//! The AMPC round executor.
//!
//! [`AmpcRuntime`] owns the chain of distributed data stores and executes
//! rounds: in each round every *virtual machine* runs a user-supplied
//! closure against a [`MachineContext`], reading adaptively from the
//! previous round's snapshot and buffering writes for the next round.
//! Machines are executed in parallel on a pool of worker threads (the
//! "physical machines"), with dynamic assignment of virtual machines to
//! workers — the parallel-slackness scheme of Section 2.1.
//!
//! The runtime records [`RoundStats`] for every round (queries, writes,
//! maxima per machine, budget violations, fault restarts, wall time), which
//! is the data every test and benchmark in this workspace asserts on.

use crate::config::{AmpcConfig, BudgetMode};
use crate::context::MachineContext;
use crate::error::AmpcError;
use crate::fault::FaultPlan;
use crate::stats::{RoundStats, RunStats};
use ampc_dds::{DdsBackend, Key, LocalBackend, Value};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Executes AMPC rounds against a chain of distributed data stores.
///
/// Generic over the [`DdsBackend`] serving the stores; `B` defaults to the
/// in-process [`LocalBackend`].  Use [`AmpcRuntime::new`] for the default
/// backend or [`AmpcRuntime::with_backend`] (usually through the
/// [`crate::with_dds_backend!`] macro, which dispatches on
/// [`crate::DdsBackendKind`]) to instantiate a specific one.  Everything the
/// runtime observes — reads, multi-value order, budget accounting — is
/// backend-independent by the [`ampc_dds::SnapshotView`] contract.
pub struct AmpcRuntime<B: DdsBackend = LocalBackend> {
    config: AmpcConfig,
    backend: B,
    stats: RunStats,
    fault_plan: FaultPlan,
    /// View of the most recently completed epoch (what the next round reads).
    snapshot: B::View,
    /// Rounds executed so far (adaptive rounds + counted scatters).
    rounds_executed: usize,
}

impl AmpcRuntime<LocalBackend> {
    /// Create a runtime on the default in-process backend with an empty
    /// `D_0`.
    pub fn new(config: AmpcConfig) -> Self {
        AmpcRuntime::with_backend(config)
    }
}

impl<B: DdsBackend> AmpcRuntime<B> {
    /// Create a runtime on backend `B` with an empty `D_0`.
    ///
    /// Algorithm drivers should not call this with a concrete `B`; they go
    /// through [`crate::with_dds_backend!`] so the backend stays a pure
    /// configuration choice.
    pub fn with_backend(config: AmpcConfig) -> Self {
        let backend = B::with_shards(config.num_shards(), config.effective_threads());
        AmpcRuntime::from_backend(config, backend)
    }

    /// Create a runtime around an already-constructed backend — how a
    /// runtime attaches to a DDS it did not spawn, e.g. a
    /// [`ampc_dds::TcpBackend`] whose leased sessions live in an external
    /// `ampc_dds::serve` process ([`crate::with_dds_backend!`] does this
    /// when [`AmpcConfig::remote_endpoint`] is set).
    pub fn from_backend(config: AmpcConfig, backend: B) -> Self {
        let snapshot = backend.empty_view();
        AmpcRuntime {
            config,
            backend,
            stats: RunStats::default(),
            fault_plan: FaultPlan::none(),
            snapshot,
            rounds_executed: 0,
        }
    }

    /// Install a fault-injection plan (see [`FaultPlan`]).
    ///
    /// Machine failures are replayed by the runtime itself; request-level
    /// faults (scheduled lost-reply retransmissions of `Commit` /
    /// `Advance`) are handed to the backend, whose transport layer honors
    /// them.  Backends without a transport ignore that part of the plan.
    /// Installing a new plan replaces any previously installed request
    /// faults, so a later empty plan clears an earlier schedule.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.backend.install_request_faults(plan.request_faults());
        self.fault_plan = plan;
        self
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &AmpcConfig {
        &self.config
    }

    /// Statistics recorded so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Consume the runtime and return its statistics.
    pub fn into_stats(self) -> RunStats {
        self.stats
    }

    /// Number of rounds executed so far.
    pub fn rounds_executed(&self) -> usize {
        self.rounds_executed
    }

    /// View of the most recently completed round's store.
    ///
    /// Algorithm drivers use this to extract results after their final
    /// round; it is also what the next round's machines will read.
    pub fn snapshot(&self) -> B::View {
        self.snapshot.clone()
    }

    /// The backend serving this runtime's stores.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Requests dropped (and retried) by transport-level fault injection so
    /// far (always 0 on backends without a transport).
    pub fn dropped_requests(&self) -> u64 {
        self.backend.dropped_requests()
    }

    /// Connections severed (and re-established via reconnect) by
    /// transport-level fault injection so far (always 0 on backends
    /// without a real connection).
    pub fn severed_connections(&self) -> u64 {
        self.backend.severed_connections()
    }

    /// Worker threads used for end-of-round shard-parallel commits.
    fn commit_threads(&self) -> usize {
        self.config.effective_threads()
    }

    /// Load the algorithm's *input* into `D_0`.
    ///
    /// The model places the input in the data store before the computation
    /// starts, so this does not count as a round.  The writes are committed
    /// through the shard-parallel path like any round's writes.
    pub fn load_input(&mut self, pairs: impl IntoIterator<Item = (Key, Value)>) {
        let threads = self.commit_threads();
        self.backend
            .commit_round(vec![pairs.into_iter().collect()], threads);
        self.snapshot = self.backend.advance(threads);
    }

    /// Scatter driver-assembled key-value pairs into the next store.
    ///
    /// Algorithms use this for the parts the paper implements "using
    /// standard MPC primitives" (re-publishing a contracted graph, statuses,
    /// …).  It counts as one round whose writes are distributed evenly over
    /// the machines.
    pub fn scatter(&mut self, pairs: Vec<(Key, Value)>) {
        let started = Instant::now();
        let num_machines = self.config.num_machines();
        let total_writes = pairs.len() as u64;
        let threads = self.commit_threads();
        self.backend.commit_round(vec![pairs], threads);
        self.snapshot = self.backend.advance(threads);
        let max_writes = total_writes.div_ceil(num_machines.max(1) as u64);
        let budget = self.config.round_budget();
        self.stats.push(RoundStats {
            round: self.rounds_executed,
            machines: num_machines,
            total_queries: 0,
            max_queries_per_machine: 0,
            total_writes,
            max_writes_per_machine: max_writes,
            budget_violations: u64::from(max_writes > budget),
            restarts: 0,
            wall_time: started.elapsed(),
        });
        self.rounds_executed += 1;
    }

    /// Execute one adaptive round with `num_machines` virtual machines.
    ///
    /// Machine `i` runs `work(&mut ctx)` with a context whose reads go to
    /// the previous round's snapshot; its buffered writes are committed (in
    /// machine-id order) when every machine has finished, and become visible
    /// to the *next* round.  Returns the per-machine results in machine-id
    /// order.
    ///
    /// # Errors
    /// [`AmpcError::BudgetExceeded`] in [`BudgetMode::Strict`] if any machine
    /// exceeded its `O(S)` budget.
    pub fn run_round<R, F>(&mut self, num_machines: usize, work: F) -> Result<Vec<R>, AmpcError>
    where
        R: Send,
        F: Fn(&mut MachineContext<B::View>) -> R + Sync,
    {
        let started = Instant::now();
        let num_machines = num_machines.max(1);
        let round = self.rounds_executed;
        let threads = self.config.effective_threads().min(num_machines).max(1);

        struct MachineOutcome<R> {
            machine: usize,
            result: R,
            writes: Vec<(Key, Value)>,
            queries: u64,
            restarted: bool,
        }

        let outcomes: Mutex<Vec<MachineOutcome<R>>> = Mutex::new(Vec::with_capacity(num_machines));
        let cursor = AtomicUsize::new(0);
        let snapshot = &self.snapshot;
        let config = &self.config;
        let fault_plan = &self.fault_plan;
        let work = &work;

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local: Vec<MachineOutcome<R>> = Vec::new();
                    loop {
                        let machine = cursor.fetch_add(1, Ordering::Relaxed);
                        if machine >= num_machines {
                            break;
                        }
                        let mut restarted = false;
                        if fault_plan.should_fail(round, machine) {
                            // Simulated failure: the machine runs, crashes and
                            // its writes are discarded; it is then re-executed
                            // from scratch against the same immutable snapshot.
                            let mut doomed =
                                MachineContext::new(machine, round, snapshot.clone(), config);
                            let _ = work(&mut doomed);
                            drop(doomed);
                            restarted = true;
                        }
                        let mut ctx = MachineContext::new(machine, round, snapshot.clone(), config);
                        let result = work(&mut ctx);
                        let queries = ctx.queries_issued();
                        let (writes, _) = ctx.into_parts();
                        local.push(MachineOutcome {
                            machine,
                            result,
                            writes,
                            queries,
                            restarted,
                        });
                    }
                    outcomes.lock().append(&mut local);
                });
            }
        });

        let mut outcomes = outcomes.into_inner();
        outcomes.sort_by_key(|o| o.machine);

        // Aggregate statistics and detect budget violations.
        let budget = self.config.round_budget();
        let mut total_queries = 0u64;
        let mut total_writes = 0u64;
        let mut max_queries = 0u64;
        let mut max_writes = 0u64;
        let mut violations = 0u64;
        let mut restarts = 0u64;
        let mut first_violation: Option<(usize, u64, u64)> = None;
        for o in &outcomes {
            let writes = o.writes.len() as u64;
            total_queries += o.queries;
            total_writes += writes;
            max_queries = max_queries.max(o.queries);
            max_writes = max_writes.max(writes);
            restarts += u64::from(o.restarted);
            if o.queries + writes > budget {
                violations += 1;
                if first_violation.is_none() {
                    first_violation = Some((o.machine, o.queries, writes));
                }
            }
        }

        if self.config.budget_mode == BudgetMode::Strict {
            if let Some((machine, queries, writes)) = first_violation {
                return Err(AmpcError::BudgetExceeded {
                    round,
                    machine,
                    queries,
                    writes,
                    budget,
                });
            }
        }

        // Commit writes in deterministic (machine id, write order) order so
        // multi-value indices are reproducible — a key lives on exactly one
        // shard, so per-shard order preserves per-key order even though
        // distinct shards commit in parallel — then advance the epoch.
        let mut results = Vec::with_capacity(outcomes.len());
        let mut batches = Vec::with_capacity(outcomes.len());
        for o in outcomes {
            batches.push(o.writes);
            results.push(o.result);
        }
        let commit_threads = self.commit_threads();
        // A backend failure (e.g. a message-passing owner thread dying)
        // panics inside the backend with a typed transport message; catch
        // it at the round boundary and surface it as an `AmpcError` instead
        // of tearing the driver down.  The runtime must not be reused after
        // this error — the backend's epoch state is indeterminate.
        let backend = &mut self.backend;
        let advanced = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            backend.commit_round(batches, commit_threads);
            backend.advance(commit_threads)
        }));
        self.snapshot = match advanced {
            Ok(view) => view,
            Err(payload) => {
                return Err(AmpcError::Backend {
                    message: panic_message(payload),
                })
            }
        };

        self.stats.push(RoundStats {
            round,
            machines: num_machines,
            total_queries,
            max_queries_per_machine: max_queries,
            total_writes,
            max_writes_per_machine: max_writes,
            budget_violations: violations,
            restarts,
            wall_time: started.elapsed(),
        });
        self.rounds_executed += 1;
        Ok(results)
    }

    /// Record `extra` rounds of work done with standard MPC primitives
    /// (sorting, deduplication, prefix sums) that the driver performed
    /// outside the adaptive executor.  Keeps round counts honest when an
    /// algorithm leans on MPC-implementable steps the paper does not detail.
    pub fn note_mpc_rounds(&mut self, extra: usize, communication: u64) {
        for _ in 0..extra {
            self.stats.push(RoundStats {
                round: self.rounds_executed,
                machines: self.config.num_machines(),
                total_queries: 0,
                max_queries_per_machine: 0,
                total_writes: communication / extra.max(1) as u64,
                max_writes_per_machine: (communication / extra.max(1) as u64)
                    .div_ceil(self.config.num_machines().max(1) as u64),
                budget_violations: 0,
                restarts: 0,
                wall_time: std::time::Duration::ZERO,
            });
            self.rounds_executed += 1;
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    ampc_dds::transport::panic_message(payload.as_ref())
        .unwrap_or_else(|| "backend panicked with a non-string payload".to_string())
}

impl<B: DdsBackend> std::fmt::Debug for AmpcRuntime<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AmpcRuntime")
            .field("backend", &self.backend.backend_name())
            .field("machines", &self.config.num_machines())
            .field("space_per_machine", &self.config.space_per_machine())
            .field("rounds_executed", &self.rounds_executed)
            .finish()
    }
}

/// Instantiate an [`AmpcRuntime`] on the backend selected by a config and
/// run a block against it.
///
/// ```
/// use ampc_runtime::{with_dds_backend, AmpcConfig, DdsBackendKind};
///
/// let config = AmpcConfig::for_graph(100, 100, 0.5).with_backend(DdsBackendKind::Channel);
/// let rounds = with_dds_backend!(config, |runtime| {
///     runtime.load_input(std::iter::empty());
///     runtime.rounds_executed()
/// });
/// assert_eq!(rounds, 0);
/// ```
///
/// The block is monomorphised once per backend, so algorithm drivers stay
/// free of per-backend code paths: they write one generic body and let the
/// configuration pick the instantiation.
#[macro_export]
macro_rules! with_dds_backend {
    ($config:expr, |$runtime:ident| $body:expr) => {{
        let __config: $crate::AmpcConfig = $config;
        match __config.backend {
            $crate::DdsBackendKind::Local => {
                #[allow(unused_mut)]
                let mut $runtime =
                    $crate::AmpcRuntime::<$crate::LocalBackend>::with_backend(__config);
                $body
            }
            $crate::DdsBackendKind::Channel => {
                #[allow(unused_mut)]
                let mut $runtime =
                    $crate::AmpcRuntime::<$crate::ChannelBackend>::with_backend(__config);
                $body
            }
            $crate::DdsBackendKind::Remote => match __config.remote_endpoint.clone() {
                // An external owner process serves the DDS: open a fresh
                // leased session against it.  A connection failure here has
                // no round boundary to surface through yet, so it is a loud
                // construction panic carrying the typed transport error.
                Some(endpoint) => {
                    let __backend = $crate::TcpBackend::connect_remote(
                        endpoint.as_str(),
                        __config.num_shards(),
                        __config.effective_threads(),
                    )
                    // lint: allow(panic) — construction-time connect failure: no runtime exists yet to carry AmpcError, and callers treat a missing cluster as fatal
                    .unwrap_or_else(|err| panic!("DDS transport failure: {err}"));
                    #[allow(unused_mut)]
                    let mut $runtime = $crate::AmpcRuntime::<$crate::TcpBackend>::from_backend(
                        __config, __backend,
                    );
                    $body
                }
                None => {
                    #[allow(unused_mut)]
                    let mut $runtime =
                        $crate::AmpcRuntime::<$crate::TcpBackend>::with_backend(__config);
                    $body
                }
            },
            // The cluster backend is monomorphised per owner count, so the
            // runtime dispatch enumerates the supported counts
            // (`config::MAX_CLUSTER_OWNERS`); `with_cluster_owners` /
            // `with_cluster_endpoints` validated the range at the
            // configuration boundary.
            $crate::DdsBackendKind::Cluster => {
                let __endpoints = __config.cluster_endpoints.clone();
                let __owners = __endpoints
                    .as_ref()
                    .map_or(__config.cluster_owners, Vec::len);
                match __owners {
                    1 => $crate::cluster_backend_arm!(1, __config, __endpoints, $runtime, $body),
                    2 => $crate::cluster_backend_arm!(2, __config, __endpoints, $runtime, $body),
                    3 => $crate::cluster_backend_arm!(3, __config, __endpoints, $runtime, $body),
                    4 => $crate::cluster_backend_arm!(4, __config, __endpoints, $runtime, $body),
                    // lint: allow(panic) — unreachable: with_cluster_owners/with_cluster_endpoints validate against MAX_CLUSTER_OWNERS at the config boundary
                    n => panic!("cluster runs support 1..=4 owners, got {n}"),
                }
            }
        }
    }};
}

/// One owner-count instantiation of the [`with_dds_backend!`] cluster arm:
/// connect to the configured endpoints, or spawn a local cluster of
/// `$owners` serving processes.  An implementation detail of that macro —
/// not part of the public surface.
#[doc(hidden)]
#[macro_export]
macro_rules! cluster_backend_arm {
    ($owners:literal, $config:ident, $endpoints:ident, $runtime:ident, $body:expr) => {{
        let __backend = match &$endpoints {
            Some(endpoints) => {
                $crate::ClusterBackend::<$owners>::connect_cluster(endpoints, $config.num_shards())
            }
            None => $crate::ClusterBackend::<$owners>::spawn_local($config.num_shards()),
        }
        // lint: allow(panic) — construction-time connect failure: no runtime exists yet to carry AmpcError, and callers treat a missing cluster as fatal
        .unwrap_or_else(|err| panic!("DDS transport failure: {err}"));
        #[allow(unused_mut)]
        let mut $runtime = $crate::AmpcRuntime::<$crate::ClusterBackend<$owners>>::from_backend(
            $config, __backend,
        );
        $body
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_dds::KeyTag;

    fn key(v: u64) -> Key {
        Key::of(KeyTag::Scalar, v)
    }

    fn config(n: usize) -> AmpcConfig {
        AmpcConfig::for_graph(n, n, 0.5).with_threads(4)
    }

    #[test]
    fn round_reads_previous_writes_next() {
        let mut rt = AmpcRuntime::new(config(100));
        rt.load_input((0..10u64).map(|i| (key(i), Value::scalar(i * 2))));

        // Round 1: each machine reads one input value and writes its square.
        let results = rt
            .run_round(10, |ctx| {
                let id = ctx.machine_id() as u64;
                let value = ctx.read(key(id)).unwrap();
                ctx.write(key(100 + id), Value::scalar(value.x * value.x));
                value.x
            })
            .unwrap();
        assert_eq!(results, (0..10u64).map(|i| i * 2).collect::<Vec<_>>());

        // Round 2: reads see the squares written in round 1, not the input.
        let results = rt
            .run_round(10, |ctx| {
                let id = ctx.machine_id() as u64;
                let new = ctx.read(key(100 + id)).map(|v| v.x);
                let old = ctx.read(key(id)).map(|v| v.x);
                (new, old)
            })
            .unwrap();
        for (i, (new, old)) in results.iter().enumerate() {
            assert_eq!(*new, Some((i as u64 * 2) * (i as u64 * 2)));
            assert_eq!(*old, None, "old epoch data must not be visible");
        }
        assert_eq!(rt.rounds_executed(), 2);
        assert_eq!(rt.stats().num_rounds(), 2);
    }

    #[test]
    fn adaptive_reads_within_a_round_chase_pointers() {
        // g(x) = x + 1 stored for x in 0..50; one machine computes g^k(0)
        // in a single round by adaptive lookups — the capability MPC lacks.
        let mut rt = AmpcRuntime::new(config(2_000));
        rt.load_input((0..50u64).map(|i| (key(i), Value::scalar(i + 1))));
        let results = rt
            .run_round(1, |ctx| {
                let mut x = 0u64;
                for _ in 0..50 {
                    x = ctx.read(key(x)).map(|v| v.x).unwrap_or(x);
                }
                x
            })
            .unwrap();
        assert_eq!(results, vec![50]);
        assert_eq!(rt.stats().rounds[0].total_queries, 50);
        assert_eq!(rt.stats().rounds[0].max_queries_per_machine, 50);
    }

    #[test]
    fn results_are_ordered_by_machine_id() {
        let mut rt = AmpcRuntime::new(config(100));
        rt.load_input(std::iter::empty());
        let results = rt.run_round(32, |ctx| ctx.machine_id()).unwrap();
        assert_eq!(results, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn multi_value_commit_order_is_deterministic() {
        let mut rt = AmpcRuntime::new(config(100));
        rt.load_input(std::iter::empty());
        rt.run_round(8, |ctx| {
            ctx.write(key(7), Value::scalar(ctx.machine_id() as u64));
        })
        .unwrap();
        let snap = rt.snapshot();
        assert_eq!(snap.multiplicity(&key(7)), 8);
        for i in 0..8 {
            assert_eq!(snap.get_indexed(&key(7), i), Some(Value::scalar(i as u64)));
        }
    }

    #[test]
    fn read_many_in_a_round_matches_single_reads_and_costs_the_same() {
        let run = |batched: bool| {
            let mut rt = AmpcRuntime::new(config(1_000));
            rt.load_input((0..100u64).map(|i| (key(i), Value::scalar(i * 5))));
            let results = rt
                .run_round(4, move |ctx| {
                    let keys: Vec<Key> = (0..25u64)
                        .map(|i| key(ctx.machine_id() as u64 * 25 + i))
                        .collect();
                    if batched {
                        ctx.read_many(&keys)
                            .into_iter()
                            .map(|v| v.unwrap().x)
                            .sum::<u64>()
                    } else {
                        keys.iter().map(|&k| ctx.read(k).unwrap().x).sum::<u64>()
                    }
                })
                .unwrap();
            (results, rt.stats().rounds[0].clone())
        };
        let (single_results, single_round) = run(false);
        let (batched_results, batched_round) = run(true);
        assert_eq!(single_results, batched_results);
        assert_eq!(single_round.total_queries, batched_round.total_queries);
        assert_eq!(
            single_round.max_queries_per_machine,
            batched_round.max_queries_per_machine
        );
        assert_eq!(
            single_round.budget_violations,
            batched_round.budget_violations
        );
    }

    #[test]
    fn parallel_commit_is_deterministic_across_thread_counts() {
        let run = |threads: usize| {
            let mut rt = AmpcRuntime::new(config(10_000).with_threads(threads));
            rt.load_input(std::iter::empty());
            rt.run_round(64, |ctx| {
                // Heavy multi-value contention: 64 machines, 16 shared keys.
                for i in 0..8u64 {
                    ctx.write(
                        key(i % 16),
                        Value::scalar(ctx.machine_id() as u64 * 100 + i),
                    );
                }
            })
            .unwrap();
            let snap = rt.snapshot();
            (0..16u64)
                .map(|i| snap.get_all(&key(i)))
                .collect::<Vec<_>>()
        };
        let single = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(single, run(threads), "threads = {threads}");
        }
    }

    #[test]
    fn strict_budget_mode_errors_on_violation() {
        let cfg = AmpcConfig::for_graph(100, 100, 0.5)
            .with_budget_factor(1.0) // budget = 10
            .with_budget_mode(BudgetMode::Strict)
            .with_threads(2);
        let mut rt = AmpcRuntime::new(cfg);
        rt.load_input((0..100u64).map(|i| (key(i), Value::scalar(i))));
        let err = rt
            .run_round(2, |ctx| {
                for i in 0..50u64 {
                    let _ = ctx.read(key(i));
                }
            })
            .unwrap_err();
        match err {
            AmpcError::BudgetExceeded {
                budget, queries, ..
            } => {
                assert_eq!(budget, 10);
                assert_eq!(queries, 50);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn record_budget_mode_counts_violations_but_continues() {
        let cfg = AmpcConfig::for_graph(100, 100, 0.5)
            .with_budget_factor(1.0)
            .with_budget_mode(BudgetMode::Record)
            .with_threads(2);
        let mut rt = AmpcRuntime::new(cfg);
        rt.load_input((0..100u64).map(|i| (key(i), Value::scalar(i))));
        let results = rt
            .run_round(2, |ctx| {
                for i in 0..50u64 {
                    let _ = ctx.read(key(i));
                }
                ctx.machine_id()
            })
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(rt.stats().rounds[0].budget_violations, 2);
    }

    #[test]
    fn scatter_counts_as_a_round() {
        let mut rt = AmpcRuntime::new(config(100));
        rt.scatter((0..20u64).map(|i| (key(i), Value::scalar(i))).collect());
        assert_eq!(rt.rounds_executed(), 1);
        assert_eq!(rt.stats().rounds[0].total_writes, 20);
        let snap = rt.snapshot();
        assert_eq!(snap.get(&key(3)), Some(Value::scalar(3)));
    }

    #[test]
    fn fault_injection_restarts_do_not_change_results() {
        let run = |plan: FaultPlan| {
            let mut rt = AmpcRuntime::new(config(100)).with_fault_plan(plan);
            rt.load_input((0..8u64).map(|i| (key(i), Value::scalar(i * 3))));
            let results = rt
                .run_round(8, |ctx| {
                    let id = ctx.machine_id() as u64;
                    let v = ctx.read(key(id)).unwrap().x;
                    ctx.write(key(100 + id), Value::scalar(v + 1));
                    v
                })
                .unwrap();
            let snap = rt.snapshot();
            let written: Vec<_> = (0..8u64).map(|i| snap.get(&key(100 + i))).collect();
            (results, written, rt.stats().restarts())
        };

        let (clean_results, clean_written, clean_restarts) = run(FaultPlan::none());
        let (faulty_results, faulty_written, faulty_restarts) =
            run(FaultPlan::none().fail(0, 3).fail(0, 5));
        assert_eq!(clean_restarts, 0);
        assert_eq!(faulty_restarts, 2);
        assert_eq!(clean_results, faulty_results);
        assert_eq!(clean_written, faulty_written);
    }

    #[test]
    fn note_mpc_rounds_extends_round_count() {
        let mut rt = AmpcRuntime::new(config(100));
        rt.note_mpc_rounds(3, 300);
        assert_eq!(rt.rounds_executed(), 3);
        assert_eq!(rt.stats().num_rounds(), 3);
        assert_eq!(rt.stats().total_writes(), 300);
    }

    #[test]
    fn rounds_behave_identically_on_the_channel_backend() {
        use crate::config::DdsBackendKind;
        // The same two-round program, once per backend, selected via config
        // only; outputs, stats and multi-value order must coincide.
        let run = |backend: DdsBackendKind| {
            let config = config(100).with_backend(backend);
            crate::with_dds_backend!(config, |rt| {
                rt.load_input((0..10u64).map(|i| (key(i), Value::scalar(i * 2))));
                let results = rt
                    .run_round(10, |ctx| {
                        let id = ctx.machine_id() as u64;
                        let value = ctx.read(key(id)).unwrap();
                        ctx.write(key(7), Value::scalar(id));
                        ctx.write(key(100 + id), Value::scalar(value.x * value.x));
                        value.x
                    })
                    .unwrap();
                let echoed = rt
                    .run_round(10, |ctx| {
                        let id = ctx.machine_id() as u64;
                        let keys = [key(100 + id), key(id)];
                        let batch = ctx.read_many(&keys);
                        // key(7) was written by every machine in round 1, so
                        // round 2 sees the full multi-value list: index
                        // order must be machine-id order on every backend.
                        let multi: Vec<Option<u64>> = (0..10)
                            .map(|i| ctx.read_indexed(key(7), i).map(|v| v.x))
                            .collect();
                        (batch[0].map(|v| v.x), batch[1].map(|v| v.x), multi)
                    })
                    .unwrap();
                let queries: Vec<u64> = rt
                    .stats()
                    .rounds
                    .iter()
                    .map(|round| round.total_queries)
                    .collect();
                (results, echoed, queries)
            })
        };
        let local = run(DdsBackendKind::Local);
        let channel = run(DdsBackendKind::Channel);
        let remote = run(DdsBackendKind::Remote);
        assert_eq!(local, channel);
        assert_eq!(local, remote);
        // Pin the multi-value index order itself (machine-id order), not
        // just cross-backend agreement.
        let (_, _, ref multi) = local.1[0];
        let expected: Vec<Option<u64>> = (0..10u64).map(Some).collect();
        assert_eq!(*multi, expected);
    }

    #[test]
    fn auto_batching_window_is_backend_independent_and_costs_like_point_reads() {
        use crate::config::DdsBackendKind;
        // The same round body, once issuing point reads and once queuing the
        // same keys through the auto-batching window, on both backends:
        // results and every per-round statistic must coincide.
        let run = |backend: DdsBackendKind, windowed: bool| {
            let config = config(10_000).with_backend(backend);
            crate::with_dds_backend!(config, |rt| {
                rt.load_input((0..400u64).map(|i| (key(i), Value::scalar(i * 2))));
                let sums = rt
                    .run_round(4, move |ctx| {
                        let base = ctx.machine_id() as u64 * 100;
                        if windowed {
                            let tickets: Vec<_> =
                                (0..100u64).map(|i| ctx.queue_read(key(base + i))).collect();
                            tickets
                                .into_iter()
                                .map(|t| ctx.take_read(t).unwrap().x)
                                .sum::<u64>()
                        } else {
                            (0..100u64)
                                .map(|i| ctx.read(key(base + i)).unwrap().x)
                                .sum::<u64>()
                        }
                    })
                    .unwrap();
                let round = rt.stats().rounds[0].clone();
                (
                    sums,
                    round.total_queries,
                    round.max_queries_per_machine,
                    round.budget_violations,
                )
            })
        };
        let baseline = run(DdsBackendKind::Local, false);
        for backend in [
            DdsBackendKind::Local,
            DdsBackendKind::Channel,
            DdsBackendKind::Remote,
        ] {
            assert_eq!(run(backend, true), baseline, "windowed on {backend:?}");
            assert_eq!(run(backend, false), baseline, "point on {backend:?}");
        }
    }

    #[test]
    fn fault_restarts_are_backend_independent() {
        use crate::config::DdsBackendKind;
        use rand::Rng;
        let run = |backend: DdsBackendKind| {
            let config = config(100).with_backend(backend);
            crate::with_dds_backend!(config, |rt| {
                let mut rt = rt.with_fault_plan(FaultPlan::none().fail(0, 2));
                rt.load_input((0..4u64).map(|i| (key(i), Value::scalar(i))));
                let results = rt
                    .run_round(4, |ctx| {
                        let id = ctx.machine_id() as u64;
                        ctx.read(key(id)).unwrap().x + ctx.rng().gen::<u64>() % 1000
                    })
                    .unwrap();
                (results, rt.stats().restarts())
            })
        };
        let local = run(DdsBackendKind::Local);
        let channel = run(DdsBackendKind::Channel);
        let remote = run(DdsBackendKind::Remote);
        assert_eq!(local, channel);
        assert_eq!(local, remote);
        assert_eq!(local.1, 1);
    }

    #[test]
    fn dropped_and_retried_requests_leave_results_byte_identical() {
        use crate::config::DdsBackendKind;
        use ampc_dds::SnapshotView;
        // The ROADMAP "dropped/retried requests" fault story: schedule the
        // transport to lose (and retry) one Commit and one Advance, and the
        // run must be byte-identical to an undisturbed one.  Epoch
        // coordinates: load_input builds epoch 0, round r builds epoch
        // r + 1.
        let run = |backend: DdsBackendKind, plan: FaultPlan| {
            let config = config(1_000).with_backend(backend);
            crate::with_dds_backend!(config, |rt| {
                let mut rt = rt.with_fault_plan(plan);
                rt.load_input((0..100u64).map(|i| (key(i), Value::scalar(i))));
                let sums = rt
                    .run_round(8, |ctx| {
                        let id = ctx.machine_id() as u64;
                        let mut sum = 0;
                        for i in 0..8u64 {
                            let k = id * 8 + i;
                            sum += ctx.read(key(k)).map_or(0, |v| v.x);
                            ctx.write(key(1_000 + k), Value::scalar(k * 3));
                        }
                        sum
                    })
                    .unwrap();
                let echoed = rt
                    .run_round(8, |ctx| {
                        let id = ctx.machine_id() as u64;
                        (0..8u64)
                            .map(|i| ctx.read(key(1_000 + id * 8 + i)).map(|v| v.x))
                            .collect::<Vec<_>>()
                    })
                    .unwrap();
                let mut entries = rt.snapshot().entries();
                entries.sort_by_key(|&(key, _)| key);
                (sums, echoed, entries, rt.dropped_requests())
            })
        };
        for backend in [DdsBackendKind::Channel, DdsBackendKind::Remote] {
            let (sums, echoed, entries, dropped) = run(backend, FaultPlan::none());
            assert_eq!(dropped, 0);
            let faulty_plan = FaultPlan::none()
                .drop_commit(1, 0) // round 0's writes, owner 0
                .drop_advance(2, 1); // round 1's freeze, owner 1
            let (f_sums, f_echoed, f_entries, f_dropped) = run(backend, faulty_plan);
            assert_eq!(
                f_dropped, 2,
                "both scheduled drops must fire on {backend:?}"
            );
            assert_eq!(sums, f_sums, "round results diverged on {backend:?}");
            assert_eq!(echoed, f_echoed, "reads diverged on {backend:?}");
            assert_eq!(entries, f_entries, "final store diverged on {backend:?}");
        }
        // A transport-free backend has nothing to drop: the plan installs
        // as a no-op and the run is simply clean.
        let (_, _, _, dropped) = run(
            DdsBackendKind::Local,
            FaultPlan::none().drop_commit(1, 0).drop_advance(2, 1),
        );
        assert_eq!(dropped, 0);
    }

    #[test]
    fn backend_panics_surface_as_typed_errors_at_the_round_boundary() {
        use ampc_dds::Snapshot;

        /// A backend whose owner "dies" mid-commit, the way a transport
        /// failure panics out of the infallible `DdsBackend` surface.
        struct PanickyBackend;
        impl DdsBackend for PanickyBackend {
            type View = Snapshot;
            fn with_shards(_: usize, _: usize) -> Self {
                PanickyBackend
            }
            fn num_shards(&self) -> usize {
                1
            }
            fn empty_view(&self) -> Snapshot {
                Snapshot::empty(1)
            }
            fn commit_round(&mut self, _: Vec<Vec<(Key, Value)>>, _: usize) {
                panic!("DDS transport failure: DDS owner 0 panicked: boom");
            }
            fn advance(&mut self, _: usize) -> Snapshot {
                Snapshot::empty(1)
            }
            fn completed_epochs(&self) -> usize {
                0
            }
            fn total_writes(&mut self) -> u64 {
                0
            }
            fn backend_name(&self) -> &'static str {
                "panicky"
            }
        }

        let mut rt = AmpcRuntime::<PanickyBackend>::with_backend(config(100));
        let err = rt.run_round(2, |ctx| ctx.machine_id()).unwrap_err();
        match err {
            AmpcError::Backend { message } => {
                assert!(message.contains("owner 0 panicked"), "{message}");
                assert!(message.contains("boom"), "{message}");
            }
            other => panic!("expected a typed backend error, got {other:?}"),
        }
    }

    #[test]
    fn machine_rngs_differ_within_a_round() {
        use rand::Rng;
        let mut rt = AmpcRuntime::new(config(100));
        rt.load_input(std::iter::empty());
        let draws = rt.run_round(16, |ctx| ctx.rng().gen::<u64>()).unwrap();
        let distinct: std::collections::HashSet<u64> = draws.iter().copied().collect();
        assert_eq!(distinct.len(), 16);
    }
}

//! Fault injection for exercising the model's fault-tolerance story.
//!
//! Section 2.1 of the paper argues AMPC is as fault tolerant as MPC: because
//! the contents of `D_{i-1}` never change within round `i`, a failed machine
//! can simply be re-executed from scratch against the same snapshot.  The
//! [`FaultPlan`] lets tests and benches schedule two classes of fault:
//!
//! * **Machine failures** at chosen `(round, machine)` coordinates — the
//!   runtime discards the failed attempt's writes and re-runs the machine.
//! * **Request-level faults** at chosen `(epoch, worker)` coordinates — a
//!   write-side protocol request (`Commit` / `Advance`) is delivered, its
//!   reply is lost in transit, and the transport layer of a
//!   message-passing backend retransmits it, so the owner must apply the
//!   duplicate exactly once (see [`ampc_dds::RequestFaults`]).  Backends
//!   without a transport have nothing to retransmit and ignore these
//!   entries.
//! * **Connection severs** at chosen `(epoch, worker)` coordinates — the
//!   TCP connection to an owner is cut mid-round, right before the commit
//!   targeting that epoch goes out.  The socket transport must reconnect
//!   (capped exponential backoff), replay its lease handshake and the
//!   outstanding requests idempotently, and leave the run byte-identical.
//!   Only the socket backend has a connection to cut; other backends leave
//!   sever entries untouched.
//!
//! In both cases the accompanying tests assert results are byte-identical
//! to a fault-free run — the immutable-epoch property that makes restarts
//! and retries safe.

use ampc_dds::proto::RequestKind;
use ampc_dds::RequestFaults;
use std::collections::HashSet;

/// A deterministic schedule of machine failures and request-level faults.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    failures: HashSet<(usize, usize)>,
    /// Scheduled request drops: (kind, epoch, worker).  Epoch coordinates
    /// name the epoch the request targets: `load_input` builds epoch 0, the
    /// round-`r` commit of a run that loaded input builds epoch `r + 1`.
    request_drops: HashSet<(RequestKind, usize, usize)>,
    /// Scheduled connection severs, same coordinates as `request_drops`.
    severs: HashSet<(RequestKind, usize, usize)>,
}

impl FaultPlan {
    /// A plan with no failures.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Schedule the first execution attempt of `machine` in `round` to fail.
    pub fn fail(mut self, round: usize, machine: usize) -> Self {
        self.failures.insert((round, machine));
        self
    }

    /// Schedule failures for every machine of `round`.
    pub fn fail_round(mut self, round: usize, machines: usize) -> Self {
        for m in 0..machines {
            self.failures.insert((round, m));
        }
        self
    }

    /// Schedule the `Commit` request targeting `epoch` on owner `worker`
    /// to lose its reply in transit, forcing the transport to retransmit
    /// it (the owner must apply the duplicate exactly once).  Fires only
    /// if that owner actually receives pairs for the epoch.
    pub fn drop_commit(mut self, epoch: usize, worker: usize) -> Self {
        self.request_drops
            .insert((RequestKind::Commit, epoch, worker));
        self
    }

    /// Schedule the `Advance` request freezing `epoch` on owner `worker`
    /// to lose its reply in transit, forcing the transport to retransmit
    /// it (the owner republishes the already-frozen epoch).
    pub fn drop_advance(mut self, epoch: usize, worker: usize) -> Self {
        self.request_drops
            .insert((RequestKind::Advance, epoch, worker));
        self
    }

    /// Schedule the TCP connection to owner `worker` to be severed
    /// mid-round, right before the `Commit` targeting `epoch` is
    /// transmitted.  The socket transport must reconnect and replay
    /// idempotently; results must stay byte-identical (pinned by
    /// `tests/reconnect.rs`).  Fires only if that owner actually receives
    /// pairs for the epoch; backends without a connection ignore it.
    pub fn sever_connection(mut self, epoch: usize, worker: usize) -> Self {
        self.severs.insert((RequestKind::Commit, epoch, worker));
        self
    }

    /// Like [`FaultPlan::sever_connection`], but cutting the connection
    /// right before the `Advance` freezing `epoch` — the other mid-round
    /// write-side request.  Advances go to every owner, so this fires
    /// unconditionally on the socket backend.
    pub fn sever_before_advance(mut self, epoch: usize, worker: usize) -> Self {
        self.severs.insert((RequestKind::Advance, epoch, worker));
        self
    }

    /// Schedule cluster owner `owner`'s connection to be cut right before
    /// the `FreezeEpoch` freezing `epoch` goes out — phase 1 of the cluster
    /// backend's two-phase advance barrier.  The client must reconnect,
    /// replay the freeze, and collect every owner's ack before publishing
    /// anything; results must stay byte-identical (pinned by
    /// `tests/reconnect.rs`).  Only the cluster backend sends barrier
    /// requests, so other backends ignore it.
    pub fn sever_owner(mut self, epoch: usize, owner: usize) -> Self {
        self.severs.insert((RequestKind::FreezeEpoch, epoch, owner));
        self
    }

    /// Schedule cluster owner `owner`'s connection to be cut *between* the
    /// barrier's phases: after its `FreezeEpoch` for `epoch` was acked,
    /// right before the `PublishEpoch` goes out.  The owner is left holding
    /// a prepared-but-unpublished epoch across the reconnect, and the
    /// replayed publish must republish it idempotently — the hardest spot
    /// to sever, since every *other* owner may have published already.
    pub fn sever_between_freeze_and_publish(mut self, epoch: usize, owner: usize) -> Self {
        self.severs
            .insert((RequestKind::PublishEpoch, epoch, owner));
        self
    }

    /// Does the first attempt of `machine` in `round` fail?
    pub fn should_fail(&self, round: usize, machine: usize) -> bool {
        self.failures.contains(&(round, machine))
    }

    /// The scheduled request drops as a transport-level fault schedule
    /// (empty if none are scheduled).
    pub fn request_faults(&self) -> RequestFaults {
        let faults = RequestFaults::none();
        for &(kind, epoch, worker) in &self.request_drops {
            faults.schedule_drop(kind, epoch, worker);
        }
        for &(kind, epoch, worker) in &self.severs {
            faults.schedule_sever(kind, epoch, worker);
        }
        faults
    }

    /// `true` if any request-level faults (drops or severs) are scheduled.
    pub fn has_request_faults(&self) -> bool {
        !self.request_drops.is_empty() || !self.severs.is_empty()
    }

    /// Number of scheduled faults (machine failures, request drops, and
    /// connection severs).
    pub fn len(&self) -> usize {
        self.failures.len() + self.request_drops.len() + self.severs.len()
    }

    /// `true` if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty() && self.request_drops.is_empty() && self.severs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fails() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.should_fail(0, 0));
        assert!(!plan.should_fail(5, 3));
        assert!(!plan.has_request_faults());
        assert!(plan.request_faults().is_empty());
    }

    #[test]
    fn scheduled_failures_fire_once() {
        let plan = FaultPlan::none().fail(2, 1).fail(3, 0);
        assert_eq!(plan.len(), 2);
        assert!(plan.should_fail(2, 1));
        assert!(plan.should_fail(3, 0));
        assert!(!plan.should_fail(2, 0));
        assert!(!plan.should_fail(1, 1));
    }

    #[test]
    fn fail_round_covers_all_machines() {
        let plan = FaultPlan::none().fail_round(1, 4);
        assert_eq!(plan.len(), 4);
        for m in 0..4 {
            assert!(plan.should_fail(1, m));
        }
        assert!(!plan.should_fail(1, 4));
        assert!(!plan.should_fail(0, 0));
    }

    #[test]
    fn request_drops_translate_to_a_transport_schedule() {
        let plan = FaultPlan::none()
            .drop_commit(1, 0)
            .drop_advance(2, 3)
            .fail(0, 0);
        assert_eq!(plan.len(), 3);
        assert!(plan.has_request_faults());
        assert!(!plan.is_empty());

        let faults = plan.request_faults();
        assert!(!faults.is_empty());
        // Exactly the scheduled coordinates fire, each exactly once.
        assert!(!faults.should_drop(RequestKind::Commit, 1, 1));
        assert!(!faults.should_drop(RequestKind::Advance, 1, 0));
        assert!(faults.should_drop(RequestKind::Commit, 1, 0));
        assert!(!faults.should_drop(RequestKind::Commit, 1, 0));
        assert!(faults.should_drop(RequestKind::Advance, 2, 3));
        assert_eq!(faults.dropped(), 2);
        assert!(faults.is_empty());

        // The plan is a pure schedule: converting again starts fresh.
        assert_eq!(plan.request_faults().dropped(), 0);
        assert!(!plan.request_faults().is_empty());
    }

    #[test]
    fn barrier_severs_translate_to_a_transport_schedule() {
        let plan = FaultPlan::none()
            .sever_owner(1, 0)
            .sever_between_freeze_and_publish(2, 1);
        assert_eq!(plan.len(), 2);
        let faults = plan.request_faults();
        assert!(!faults.should_sever(RequestKind::FreezeEpoch, 1, 1));
        assert!(!faults.should_sever(RequestKind::PublishEpoch, 1, 0));
        assert!(faults.should_sever(RequestKind::FreezeEpoch, 1, 0));
        assert!(!faults.should_sever(RequestKind::FreezeEpoch, 1, 0));
        assert!(faults.should_sever(RequestKind::PublishEpoch, 2, 1));
        assert_eq!(faults.severed(), 2);
    }

    #[test]
    fn severs_translate_to_a_transport_schedule() {
        let plan = FaultPlan::none()
            .sever_connection(1, 0)
            .sever_before_advance(2, 1);
        assert_eq!(plan.len(), 2);
        assert!(plan.has_request_faults());
        assert!(!plan.is_empty());

        let faults = plan.request_faults();
        assert!(!faults.is_empty());
        assert!(!faults.should_sever(RequestKind::Commit, 1, 1));
        assert!(!faults.should_sever(RequestKind::Advance, 1, 0));
        assert!(faults.should_sever(RequestKind::Commit, 1, 0));
        assert!(!faults.should_sever(RequestKind::Commit, 1, 0));
        assert!(faults.should_sever(RequestKind::Advance, 2, 1));
        assert_eq!(faults.severed(), 2);
        assert_eq!(faults.dropped(), 0);
        assert!(faults.is_empty());
    }
}

//! Fault injection for exercising the model's fault-tolerance story.
//!
//! Section 2.1 of the paper argues AMPC is as fault tolerant as MPC: because
//! the contents of `D_{i-1}` never change within round `i`, a failed machine
//! can simply be re-executed from scratch against the same snapshot.  The
//! [`FaultPlan`] lets tests and benches schedule machine failures at chosen
//! `(round, machine)` coordinates; the runtime discards the failed attempt's
//! writes and re-runs the machine, and tests then assert that results are
//! identical to a failure-free run.

use std::collections::HashSet;

/// A deterministic schedule of machine failures.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    failures: HashSet<(usize, usize)>,
}

impl FaultPlan {
    /// A plan with no failures.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Schedule the first execution attempt of `machine` in `round` to fail.
    pub fn fail(mut self, round: usize, machine: usize) -> Self {
        self.failures.insert((round, machine));
        self
    }

    /// Schedule failures for every machine of `round`.
    pub fn fail_round(mut self, round: usize, machines: usize) -> Self {
        for m in 0..machines {
            self.failures.insert((round, m));
        }
        self
    }

    /// Does the first attempt of `machine` in `round` fail?
    pub fn should_fail(&self, round: usize, machine: usize) -> bool {
        self.failures.contains(&(round, machine))
    }

    /// Number of scheduled failures.
    pub fn len(&self) -> usize {
        self.failures.len()
    }

    /// `true` if no failures are scheduled.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fails() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.should_fail(0, 0));
        assert!(!plan.should_fail(5, 3));
    }

    #[test]
    fn scheduled_failures_fire_once() {
        let plan = FaultPlan::none().fail(2, 1).fail(3, 0);
        assert_eq!(plan.len(), 2);
        assert!(plan.should_fail(2, 1));
        assert!(plan.should_fail(3, 0));
        assert!(!plan.should_fail(2, 0));
        assert!(!plan.should_fail(1, 1));
    }

    #[test]
    fn fail_round_covers_all_machines() {
        let plan = FaultPlan::none().fail_round(1, 4);
        assert_eq!(plan.len(), 4);
        for m in 0..4 {
            assert!(plan.should_fail(1, m));
        }
        assert!(!plan.should_fail(1, 4));
        assert!(!plan.should_fail(0, 0));
    }
}

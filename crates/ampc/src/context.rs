//! The per-machine handle used inside a round.
//!
//! A [`MachineContext`] is what an algorithm's per-machine closure receives.
//! It exposes exactly the operations the model allows within a round:
//!
//! * adaptive **reads** against the snapshot of the previous round's store
//!   (`D_{i-1}`) — each read may depend on the values returned by earlier
//!   reads, which is the defining "adaptive" capability of AMPC.  Reads of
//!   *independent* keys can be batched into one flight with
//!   [`MachineContext::read_many`], or — when the independent keys are not
//!   all in hand at once — queued into the **auto-batching window**
//!   ([`MachineContext::queue_read`] / [`MachineContext::take_read`]),
//!   which coalesces adjacent point reads into one `read_many` flight on
//!   whatever backend serves the view.  Either way a batch of `k` keys is
//!   accounted as exactly `k` queries, so batching never changes budget
//!   semantics, only wall-clock cost;
//! * buffered **writes** destined for the current round's store (`D_i`) —
//!   they become visible only after the round completes, committed by the
//!   runtime shard-parallel in deterministic (machine id, write order)
//!   order;
//! * per-machine randomness and the query/write accounting the model's
//!   `O(S)` budgets are stated in.
//!
//! The context is generic over the [`SnapshotView`] it reads, and machine
//! code cannot tell what serves it: the local shared-memory snapshot, a
//! zero-copy epoch published by a channel owner thread, or a replica
//! fetched over the `ampc_dds::proto` wire protocol from a socket-backed
//! owner — the budget ledger and results are identical by construction on
//! all of them.

use crate::config::AmpcConfig;
use ampc_dds::{Key, Snapshot, SnapshotView, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Handle through which a machine interacts with the DDS during one round.
///
/// Generic over the [`SnapshotView`] it reads from, so the same algorithm
/// closure runs unchanged against any DDS backend; `V` defaults to the local
/// [`Snapshot`] view.  Budget accounting lives here, *not* in the view —
/// every backend debits queries identically by construction.
pub struct MachineContext<V: SnapshotView = Snapshot> {
    machine_id: usize,
    round: usize,
    snapshot: V,
    writes: Vec<(Key, Value)>,
    queries: u64,
    budget: u64,
    rng: StdRng,
    /// Auto-batching window: keys queued by [`MachineContext::queue_read`]
    /// but not yet flown.
    queued_reads: Vec<Key>,
    /// Results of the most recent flight, reused flight over flight so the
    /// window runs in O(1) memory with every access cache-hot.
    resolved_now: Vec<Option<Value>>,
    /// Results of the flight before that (tickets stay redeemable across
    /// one subsequent flight — see [`MachineContext::take_read`]).
    resolved_prev: Vec<Option<Value>>,
    /// Absolute ticket index of `resolved_now[0]`.
    resolved_base: usize,
    /// Absolute ticket index of `resolved_prev[0]`.
    prev_base: usize,
    /// Tickets issued so far (the next ticket's absolute index).
    next_ticket: usize,
}

/// Handle to one read queued into the auto-batching window of a
/// [`MachineContext`] (see [`MachineContext::queue_read`]).
///
/// Tickets are only meaningful on the context that issued them, within the
/// round that issued them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadTicket(usize);

impl<V: SnapshotView> MachineContext<V> {
    /// Create the context for `machine_id` in `round`, reading from
    /// `snapshot` (the frozen `D_{round-1}`).
    pub(crate) fn new(machine_id: usize, round: usize, snapshot: V, config: &AmpcConfig) -> Self {
        // Derive a per-(round, machine) RNG stream from the run seed so that
        // re-executing a failed machine reproduces its random choices — the
        // property the paper's fault-tolerance argument needs.
        let stream = config
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((round as u64) << 32)
            .wrapping_add(machine_id as u64);
        MachineContext {
            machine_id,
            round,
            snapshot,
            writes: Vec::new(),
            queries: 0,
            budget: config.round_budget(),
            rng: StdRng::seed_from_u64(stream),
            queued_reads: Vec::new(),
            resolved_now: Vec::new(),
            resolved_prev: Vec::new(),
            resolved_base: 0,
            prev_base: 0,
            next_ticket: 0,
        }
    }

    /// Id of this machine within the round.
    pub fn machine_id(&self) -> usize {
        self.machine_id
    }

    /// Index of the round being executed.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The per-round query/write budget (`O(S)`).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Queries issued so far in this round.
    pub fn queries_issued(&self) -> u64 {
        self.queries
    }

    /// Writes issued so far in this round.
    pub fn writes_issued(&self) -> u64 {
        self.writes.len() as u64
    }

    /// Remaining budget before this machine exceeds `O(S)` communication.
    pub fn remaining_budget(&self) -> u64 {
        self.budget
            .saturating_sub(self.queries + self.writes_issued())
    }

    /// `true` once the machine has used up its communication budget.
    pub fn budget_exhausted(&self) -> bool {
        self.remaining_budget() == 0
    }

    /// Adaptive read: first value stored under `key` in `D_{round-1}`.
    pub fn read(&mut self, key: Key) -> Option<Value> {
        self.queries += 1;
        self.snapshot.get(&key)
    }

    /// Batched adaptive read: look up every key of `keys` in `D_{round-1}`,
    /// returning one `Option<Value>` per key, in order.
    ///
    /// Counts as `keys.len()` queries — budget semantics are *identical* to
    /// issuing [`MachineContext::read`] once per key.  The batch models a
    /// real deployment pipelining independent lookups over the network in
    /// one flight; adaptivity is unaffected because the next batch may
    /// depend on this batch's results.
    pub fn read_many(&mut self, keys: &[Key]) -> Vec<Option<Value>> {
        self.queries += keys.len() as u64;
        let mut out = Vec::new();
        self.snapshot.get_many(keys, &mut out);
        out
    }

    /// [`MachineContext::read_many`] writing into a caller-provided buffer,
    /// for hot loops that batch reads every iteration.  `out` is cleared
    /// first.  Counts as `keys.len()` queries.
    pub fn read_many_into(&mut self, keys: &[Key], out: &mut Vec<Option<Value>>) {
        self.queries += keys.len() as u64;
        self.snapshot.get_many(keys, out);
    }

    /// [`MachineContext::read_many`] into a caller-provided slice (`out[i]`
    /// receives the result for `keys[i]`), for hot loops that batch into
    /// fixed-size stack buffers without heap allocation.  Counts as
    /// `keys.len()` queries.
    ///
    /// # Panics
    /// If `out` is shorter than `keys`.
    pub fn read_many_slice(&mut self, keys: &[Key], out: &mut [Option<Value>]) {
        self.queries += keys.len() as u64;
        self.snapshot.get_many_slice(keys, out);
    }

    /// Width of the auto-batching window: queuing this many reads flushes
    /// the window even before a result is demanded, bounding both the
    /// flight size and the pending-key buffer.
    ///
    /// Sized to match the explicit-batching flight size algorithms use, so
    /// the windowed path pays the same per-flight fixed costs as
    /// [`MachineContext::read_many`] — 64 was 4× the flush (and
    /// result-buffer regrowth) traffic per read, which is exactly the
    /// overhead that showed up as the windowed-vs-batched latency gap in
    /// the `read_latency_backends` bench series.
    pub const READ_WINDOW: usize = 256;

    /// Queue an adaptive point read into the auto-batching window, debiting
    /// one query — exactly what [`MachineContext::read`] would debit.
    ///
    /// The read is not flown yet: it coalesces with every other queued read
    /// into a single [`SnapshotView::get_many_slice`] flight when a result
    /// is first demanded ([`MachineContext::take_read`]), when the window
    /// fills ([`MachineContext::READ_WINDOW`] pending keys), or on an
    /// explicit [`MachineContext::flush_reads`].  Queued reads must
    /// therefore be *independent* — each key was known before any queued
    /// result came back — which is precisely the condition under which the
    /// model lets a real deployment pipeline lookups over the network.
    /// Adaptivity is unaffected: the next window may depend on this
    /// window's results.
    ///
    /// The window runs in **O(1) memory**: it retains the results of the
    /// current flight and the one before it, in two buffers reused for the
    /// whole round, so queuing and redemption never touch cold memory and
    /// never allocate after the first two flights.  Redeem tickets
    /// promptly — a result is gone once two further flights have flown
    /// (see [`MachineContext::take_read`]).
    #[inline]
    pub fn queue_read(&mut self, key: Key) -> ReadTicket {
        self.queries += 1;
        let ticket = ReadTicket(self.next_ticket);
        self.next_ticket += 1;
        self.queued_reads.push(key);
        if self.queued_reads.len() >= Self::READ_WINDOW {
            self.flush_reads();
        }
        ticket
    }

    /// Result of a queued read, flushing the window in one batched flight if
    /// the ticket is still pending.  Free of further query cost — the query
    /// was debited by [`MachineContext::queue_read`].
    ///
    /// # Panics
    /// If the ticket has *expired*: results stay redeemable for the flight
    /// they flew in and one flight beyond, after which the reused window
    /// buffers have moved on.  (For a full window that is at least
    /// [`MachineContext::READ_WINDOW`] subsequent reads.)  Queue → redeem →
    /// queue the next batch, the pipelining pattern the window exists for,
    /// never expires.  Also panics if `ticket` was issued by a *different*
    /// context (tickets are only meaningful on the context — and therefore
    /// the round — that issued them); a foreign ticket whose index happens
    /// to be in range yields another read's value instead, so never carry
    /// tickets across rounds.
    #[inline]
    pub fn take_read(&mut self, ticket: ReadTicket) -> Option<Value> {
        if ticket.0 >= self.resolved_base + self.resolved_now.len() {
            self.flush_reads();
        }
        if ticket.0 >= self.resolved_base {
            return self.resolved_now[ticket.0 - self.resolved_base];
        }
        let lag = ticket.0.wrapping_sub(self.prev_base);
        if ticket.0 >= self.prev_base && lag < self.resolved_prev.len() {
            return self.resolved_prev[lag];
        }
        // lint: allow(panic) — documented contract: an expired ticket is a caller bug (use-after-window), and returning stale data would corrupt the round silently
        panic!(
            "read ticket {} expired: the window retains only the current and previous flights (redeem tickets promptly)",
            ticket.0
        );
    }

    /// Fly every read still pending in the auto-batching window as one
    /// batched lookup.  A no-op when nothing is pending; never debits
    /// queries (queuing already did).
    pub fn flush_reads(&mut self) {
        if self.queued_reads.is_empty() {
            return;
        }
        // Rotate the two resolution buffers — the previous flight stays
        // redeemable, the one before it is forgotten — and resolve the
        // pending keys into the freshly reused (cache-hot) buffer.
        std::mem::swap(&mut self.resolved_now, &mut self.resolved_prev);
        self.prev_base = self.resolved_base;
        self.resolved_base = self.next_ticket - self.queued_reads.len();
        self.resolved_now.clear();
        self.resolved_now.resize(self.queued_reads.len(), None);
        self.snapshot
            .get_many_slice(&self.queued_reads, &mut self.resolved_now);
        self.queued_reads.clear();
    }

    /// Reads queued in the auto-batching window but not yet flown.
    pub fn pending_reads(&self) -> usize {
        self.queued_reads.len()
    }

    /// Adaptive read of the `index`-th value stored under `key` (zero-based),
    /// the model's `(x, i)` multi-value addressing.
    pub fn read_indexed(&mut self, key: Key, index: usize) -> Option<Value> {
        self.queries += 1;
        self.snapshot.get_indexed(&key, index)
    }

    /// Number of values stored under `key`.
    pub fn multiplicity(&mut self, key: Key) -> usize {
        self.queries += 1;
        self.snapshot.multiplicity(&key)
    }

    /// Buffer a write of `(key, value)` into `D_round`.
    ///
    /// Writes become visible to other machines only in the next round, after
    /// the runtime commits them.
    pub fn write(&mut self, key: Key, value: Value) {
        self.writes.push((key, value));
    }

    /// Per-machine random number generator.
    ///
    /// Deterministic given (run seed, round, machine id), so a restarted
    /// machine replays the same random choices.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Consume the context, returning its buffered writes and its counters
    /// `(writes, queries)`.
    ///
    /// Flies any reads still pending in the auto-batching window first:
    /// their queries were debited at queue time, so the DDS-side read
    /// accounting must see them even if the machine never redeemed the
    /// tickets — otherwise per-shard read counters would under-count
    /// relative to the budget ledger.
    pub(crate) fn into_parts(mut self) -> (Vec<(Key, Value)>, u64) {
        self.flush_reads();
        (self.writes, self.queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_dds::{KeyTag, ShardedStore};
    use rand::Rng;

    fn test_config() -> AmpcConfig {
        AmpcConfig::for_graph(100, 100, 0.5).with_budget_factor(1.0)
    }

    fn snapshot_with(pairs: &[(u64, u64)]) -> Snapshot {
        let store = ShardedStore::new(4);
        for &(k, v) in pairs {
            store.write(Key::of(KeyTag::Scalar, k), Value::scalar(v));
        }
        store.freeze()
    }

    #[test]
    fn reads_hit_previous_round_snapshot() {
        let snap = snapshot_with(&[(1, 10), (2, 20)]);
        let cfg = test_config();
        let mut ctx = MachineContext::new(0, 1, snap, &cfg);
        assert_eq!(
            ctx.read(Key::of(KeyTag::Scalar, 1)),
            Some(Value::scalar(10))
        );
        assert_eq!(ctx.read(Key::of(KeyTag::Scalar, 3)), None);
        assert_eq!(ctx.queries_issued(), 2);
    }

    #[test]
    fn writes_are_buffered_not_readable() {
        let snap = snapshot_with(&[]);
        let cfg = test_config();
        let mut ctx = MachineContext::new(0, 1, snap, &cfg);
        let key = Key::of(KeyTag::Scalar, 7);
        ctx.write(key, Value::scalar(70));
        // The model forbids reading your own round's writes.
        assert_eq!(ctx.read(key), None);
        assert_eq!(ctx.writes_issued(), 1);
        let (writes, queries) = ctx.into_parts();
        assert_eq!(writes, vec![(key, Value::scalar(70))]);
        assert_eq!(queries, 1);
    }

    #[test]
    fn budget_accounting_counts_reads_and_writes() {
        let snap = snapshot_with(&[]);
        let cfg = test_config(); // budget = 1.0 * sqrt(100) = 10
        let mut ctx = MachineContext::new(0, 1, snap, &cfg);
        assert_eq!(ctx.budget(), 10);
        for i in 0..6u64 {
            let _ = ctx.read(Key::of(KeyTag::Scalar, i));
        }
        for i in 0..4u64 {
            ctx.write(Key::of(KeyTag::Scalar, i), Value::scalar(i));
        }
        assert_eq!(ctx.remaining_budget(), 0);
        assert!(ctx.budget_exhausted());
    }

    #[test]
    fn rng_is_deterministic_per_round_and_machine() {
        let cfg = test_config();
        let draw = |machine: usize, round: usize| -> u64 {
            let mut ctx = MachineContext::new(machine, round, snapshot_with(&[]), &cfg);
            ctx.rng().gen()
        };
        assert_eq!(draw(3, 2), draw(3, 2));
        assert_ne!(draw(3, 2), draw(4, 2));
        assert_ne!(draw(3, 2), draw(3, 3));
    }

    #[test]
    fn read_many_budget_accounting_matches_single_reads_exactly() {
        let pairs: Vec<(u64, u64)> = (0..40).map(|i| (i, i * 2)).collect();
        let cfg = test_config();
        let keys: Vec<Key> = (0..60u64).map(|i| Key::of(KeyTag::Scalar, i)).collect();

        // One context issues 60 single reads, the other one batched read.
        let mut singles = MachineContext::new(0, 1, snapshot_with(&pairs), &cfg);
        let single_results: Vec<Option<Value>> = keys.iter().map(|&k| singles.read(k)).collect();

        let mut batched = MachineContext::new(0, 1, snapshot_with(&pairs), &cfg);
        let batch_results = batched.read_many(&keys);

        assert_eq!(single_results, batch_results);
        assert_eq!(singles.queries_issued(), 60);
        assert_eq!(batched.queries_issued(), singles.queries_issued());
        assert_eq!(batched.remaining_budget(), singles.remaining_budget());
        assert_eq!(batched.budget_exhausted(), singles.budget_exhausted());
    }

    #[test]
    fn read_many_into_reuses_buffer_and_counts_queries() {
        let snap = snapshot_with(&[(1, 10), (2, 20)]);
        let cfg = test_config();
        let mut ctx = MachineContext::new(0, 1, snap, &cfg);
        let mut buf = vec![Some(Value::scalar(999))]; // stale contents must go
        ctx.read_many_into(&[Key::of(KeyTag::Scalar, 2)], &mut buf);
        assert_eq!(buf, vec![Some(Value::scalar(20))]);
        ctx.read_many_into(&[], &mut buf);
        assert!(buf.is_empty());
        assert_eq!(ctx.queries_issued(), 1);
    }

    #[test]
    fn queued_reads_debit_budgets_identically_to_point_reads() {
        // The auto-batching window proof: the same key sequence through
        // queue_read/take_read and through read must produce identical
        // results AND identical budget ledgers at every step.
        let pairs: Vec<(u64, u64)> = (0..40).map(|i| (i, i * 3)).collect();
        let cfg = test_config();
        let keys: Vec<Key> = (0..60u64).map(|i| Key::of(KeyTag::Scalar, i)).collect();

        let mut point = MachineContext::new(0, 1, snapshot_with(&pairs), &cfg);
        let mut windowed = MachineContext::new(0, 1, snapshot_with(&pairs), &cfg);

        let point_results: Vec<Option<Value>> = keys.iter().map(|&k| point.read(k)).collect();
        let tickets: Vec<ReadTicket> = keys.iter().map(|&k| windowed.queue_read(k)).collect();
        // Queuing alone already debited every query, before any flight.
        assert_eq!(windowed.queries_issued(), point.queries_issued());
        assert_eq!(windowed.remaining_budget(), point.remaining_budget());
        let windowed_results: Vec<Option<Value>> =
            tickets.iter().map(|&t| windowed.take_read(t)).collect();

        assert_eq!(windowed_results, point_results);
        assert_eq!(windowed.queries_issued(), 60);
        assert_eq!(windowed.queries_issued(), point.queries_issued());
        assert_eq!(windowed.remaining_budget(), point.remaining_budget());
        assert_eq!(windowed.budget_exhausted(), point.budget_exhausted());
        // The view-side read accounting agrees too: one query per key on
        // both paths.
        assert_eq!(point.snapshot.total_reads(), 60);
        assert_eq!(windowed.snapshot.total_reads(), 60);
    }

    #[test]
    fn unredeemed_queued_reads_still_reach_the_view_accounting() {
        // A machine may queue reads and return without taking them; the
        // queries were debited at queue time, so the round-end teardown
        // must fly them or the DDS-side read counters would under-count.
        let snap = snapshot_with(&[(1, 10), (2, 20)]);
        let cfg = test_config();
        let mut ctx = MachineContext::new(0, 1, snap.clone(), &cfg);
        let _ = ctx.queue_read(Key::of(KeyTag::Scalar, 1));
        let _ = ctx.queue_read(Key::of(KeyTag::Scalar, 999));
        assert_eq!(snap.total_reads(), 0, "window still pending");
        let (_, queries) = ctx.into_parts();
        assert_eq!(queries, 2);
        assert_eq!(snap.total_reads(), 2, "teardown must flush the window");
    }

    #[test]
    fn read_window_flushes_at_capacity_and_on_demand() {
        let pairs: Vec<(u64, u64)> = (0..200).map(|i| (i, i + 1)).collect();
        let cfg = AmpcConfig::for_graph(100_000, 0, 0.5);
        let mut ctx = MachineContext::new(0, 1, snapshot_with(&pairs), &cfg);

        // Below the window width nothing flies until a result is demanded.
        let early = ctx.queue_read(Key::of(KeyTag::Scalar, 0));
        assert_eq!(ctx.pending_reads(), 1);
        assert_eq!(ctx.snapshot.total_reads(), 0);
        assert_eq!(ctx.take_read(early), Some(Value::scalar(1)));
        assert_eq!(ctx.pending_reads(), 0);
        assert_eq!(ctx.snapshot.total_reads(), 1);

        // Filling the window flushes it in one flight, unprompted.
        type Ctx = MachineContext;
        for i in 0..Ctx::READ_WINDOW as u64 - 1 {
            let _ = ctx.queue_read(Key::of(KeyTag::Scalar, i));
            assert_eq!(ctx.pending_reads(), i as usize + 1);
        }
        let last = ctx.queue_read(Key::of(KeyTag::Scalar, 99));
        assert_eq!(ctx.pending_reads(), 0, "full window must auto-flush");
        // Already resolved: taking it costs nothing further.
        let queries_before = ctx.queries_issued();
        assert_eq!(ctx.take_read(last), Some(Value::scalar(100)));
        assert_eq!(ctx.queries_issued(), queries_before);

        // Tickets stay redeemable (and stable) after later windows resolve.
        let stale = ctx.queue_read(Key::of(KeyTag::Scalar, 10));
        let _ = ctx.queue_read(Key::of(KeyTag::Scalar, 11));
        ctx.flush_reads();
        assert_eq!(ctx.take_read(stale), Some(Value::scalar(11)));
        assert_eq!(ctx.take_read(last), Some(Value::scalar(100)));
    }

    #[test]
    #[should_panic(expected = "read ticket 0 expired")]
    fn stale_tickets_panic_instead_of_yielding_other_reads() {
        // The window retains the current and previous flights only (O(1)
        // memory); a ticket held across two further flights must fail
        // loudly, never alias another read's slot.
        let pairs: Vec<(u64, u64)> = (0..10).map(|i| (i, i)).collect();
        let cfg = AmpcConfig::for_graph(100_000, 0, 0.5);
        let mut ctx = MachineContext::new(0, 1, snapshot_with(&pairs), &cfg);
        let stale = ctx.queue_read(Key::of(KeyTag::Scalar, 0));
        ctx.flush_reads(); // flight 1: [stale]
        let _ = ctx.queue_read(Key::of(KeyTag::Scalar, 1));
        ctx.flush_reads(); // flight 2: stale now previous
        let _ = ctx.queue_read(Key::of(KeyTag::Scalar, 2));
        ctx.flush_reads(); // flight 3: stale forgotten
        let _ = ctx.take_read(stale);
    }

    #[test]
    fn multiplicity_and_indexed_reads() {
        let store = ShardedStore::new(2);
        let key = Key::of(KeyTag::Scalar, 5);
        store.write(key, Value::scalar(1));
        store.write(key, Value::scalar(2));
        let cfg = test_config();
        let mut ctx = MachineContext::new(0, 1, store.freeze(), &cfg);
        assert_eq!(ctx.multiplicity(key), 2);
        assert_eq!(ctx.read_indexed(key, 1), Some(Value::scalar(2)));
        assert_eq!(ctx.read_indexed(key, 2), None);
        assert_eq!(ctx.queries_issued(), 3);
    }
}

//! The per-machine handle used inside a round.
//!
//! A [`MachineContext`] is what an algorithm's per-machine closure receives.
//! It exposes exactly the operations the model allows within a round:
//!
//! * adaptive **reads** against the snapshot of the previous round's store
//!   (`D_{i-1}`) — each read may depend on the values returned by earlier
//!   reads, which is the defining "adaptive" capability of AMPC.  Reads of
//!   *independent* keys can be batched into one flight with
//!   [`MachineContext::read_many`]; a batch of `k` keys is accounted as
//!   exactly `k` queries, so batching never changes budget semantics, only
//!   wall-clock cost;
//! * buffered **writes** destined for the current round's store (`D_i`) —
//!   they become visible only after the round completes, committed by the
//!   runtime shard-parallel in deterministic (machine id, write order)
//!   order;
//! * per-machine randomness and the query/write accounting the model's
//!   `O(S)` budgets are stated in.

use crate::config::AmpcConfig;
use ampc_dds::{Key, Snapshot, SnapshotView, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Handle through which a machine interacts with the DDS during one round.
///
/// Generic over the [`SnapshotView`] it reads from, so the same algorithm
/// closure runs unchanged against any DDS backend; `V` defaults to the local
/// [`Snapshot`] view.  Budget accounting lives here, *not* in the view —
/// every backend debits queries identically by construction.
pub struct MachineContext<V: SnapshotView = Snapshot> {
    machine_id: usize,
    round: usize,
    snapshot: V,
    writes: Vec<(Key, Value)>,
    queries: u64,
    budget: u64,
    rng: StdRng,
}

impl<V: SnapshotView> MachineContext<V> {
    /// Create the context for `machine_id` in `round`, reading from
    /// `snapshot` (the frozen `D_{round-1}`).
    pub(crate) fn new(machine_id: usize, round: usize, snapshot: V, config: &AmpcConfig) -> Self {
        // Derive a per-(round, machine) RNG stream from the run seed so that
        // re-executing a failed machine reproduces its random choices — the
        // property the paper's fault-tolerance argument needs.
        let stream = config
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((round as u64) << 32)
            .wrapping_add(machine_id as u64);
        MachineContext {
            machine_id,
            round,
            snapshot,
            writes: Vec::new(),
            queries: 0,
            budget: config.round_budget(),
            rng: StdRng::seed_from_u64(stream),
        }
    }

    /// Id of this machine within the round.
    pub fn machine_id(&self) -> usize {
        self.machine_id
    }

    /// Index of the round being executed.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The per-round query/write budget (`O(S)`).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Queries issued so far in this round.
    pub fn queries_issued(&self) -> u64 {
        self.queries
    }

    /// Writes issued so far in this round.
    pub fn writes_issued(&self) -> u64 {
        self.writes.len() as u64
    }

    /// Remaining budget before this machine exceeds `O(S)` communication.
    pub fn remaining_budget(&self) -> u64 {
        self.budget
            .saturating_sub(self.queries + self.writes_issued())
    }

    /// `true` once the machine has used up its communication budget.
    pub fn budget_exhausted(&self) -> bool {
        self.remaining_budget() == 0
    }

    /// Adaptive read: first value stored under `key` in `D_{round-1}`.
    pub fn read(&mut self, key: Key) -> Option<Value> {
        self.queries += 1;
        self.snapshot.get(&key)
    }

    /// Batched adaptive read: look up every key of `keys` in `D_{round-1}`,
    /// returning one `Option<Value>` per key, in order.
    ///
    /// Counts as `keys.len()` queries — budget semantics are *identical* to
    /// issuing [`MachineContext::read`] once per key.  The batch models a
    /// real deployment pipelining independent lookups over the network in
    /// one flight; adaptivity is unaffected because the next batch may
    /// depend on this batch's results.
    pub fn read_many(&mut self, keys: &[Key]) -> Vec<Option<Value>> {
        self.queries += keys.len() as u64;
        let mut out = Vec::new();
        self.snapshot.get_many(keys, &mut out);
        out
    }

    /// [`MachineContext::read_many`] writing into a caller-provided buffer,
    /// for hot loops that batch reads every iteration.  `out` is cleared
    /// first.  Counts as `keys.len()` queries.
    pub fn read_many_into(&mut self, keys: &[Key], out: &mut Vec<Option<Value>>) {
        self.queries += keys.len() as u64;
        self.snapshot.get_many(keys, out);
    }

    /// [`MachineContext::read_many`] into a caller-provided slice (`out[i]`
    /// receives the result for `keys[i]`), for hot loops that batch into
    /// fixed-size stack buffers without heap allocation.  Counts as
    /// `keys.len()` queries.
    ///
    /// # Panics
    /// If `out` is shorter than `keys`.
    pub fn read_many_slice(&mut self, keys: &[Key], out: &mut [Option<Value>]) {
        self.queries += keys.len() as u64;
        self.snapshot.get_many_slice(keys, out);
    }

    /// Adaptive read of the `index`-th value stored under `key` (zero-based),
    /// the model's `(x, i)` multi-value addressing.
    pub fn read_indexed(&mut self, key: Key, index: usize) -> Option<Value> {
        self.queries += 1;
        self.snapshot.get_indexed(&key, index)
    }

    /// Number of values stored under `key`.
    pub fn multiplicity(&mut self, key: Key) -> usize {
        self.queries += 1;
        self.snapshot.multiplicity(&key)
    }

    /// Buffer a write of `(key, value)` into `D_round`.
    ///
    /// Writes become visible to other machines only in the next round, after
    /// the runtime commits them.
    pub fn write(&mut self, key: Key, value: Value) {
        self.writes.push((key, value));
    }

    /// Per-machine random number generator.
    ///
    /// Deterministic given (run seed, round, machine id), so a restarted
    /// machine replays the same random choices.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Consume the context, returning its buffered writes and its counters
    /// `(writes, queries)`.
    pub(crate) fn into_parts(self) -> (Vec<(Key, Value)>, u64) {
        (self.writes, self.queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_dds::{KeyTag, ShardedStore};
    use rand::Rng;

    fn test_config() -> AmpcConfig {
        AmpcConfig::for_graph(100, 100, 0.5).with_budget_factor(1.0)
    }

    fn snapshot_with(pairs: &[(u64, u64)]) -> Snapshot {
        let store = ShardedStore::new(4);
        for &(k, v) in pairs {
            store.write(Key::of(KeyTag::Scalar, k), Value::scalar(v));
        }
        store.freeze()
    }

    #[test]
    fn reads_hit_previous_round_snapshot() {
        let snap = snapshot_with(&[(1, 10), (2, 20)]);
        let cfg = test_config();
        let mut ctx = MachineContext::new(0, 1, snap, &cfg);
        assert_eq!(
            ctx.read(Key::of(KeyTag::Scalar, 1)),
            Some(Value::scalar(10))
        );
        assert_eq!(ctx.read(Key::of(KeyTag::Scalar, 3)), None);
        assert_eq!(ctx.queries_issued(), 2);
    }

    #[test]
    fn writes_are_buffered_not_readable() {
        let snap = snapshot_with(&[]);
        let cfg = test_config();
        let mut ctx = MachineContext::new(0, 1, snap, &cfg);
        let key = Key::of(KeyTag::Scalar, 7);
        ctx.write(key, Value::scalar(70));
        // The model forbids reading your own round's writes.
        assert_eq!(ctx.read(key), None);
        assert_eq!(ctx.writes_issued(), 1);
        let (writes, queries) = ctx.into_parts();
        assert_eq!(writes, vec![(key, Value::scalar(70))]);
        assert_eq!(queries, 1);
    }

    #[test]
    fn budget_accounting_counts_reads_and_writes() {
        let snap = snapshot_with(&[]);
        let cfg = test_config(); // budget = 1.0 * sqrt(100) = 10
        let mut ctx = MachineContext::new(0, 1, snap, &cfg);
        assert_eq!(ctx.budget(), 10);
        for i in 0..6u64 {
            let _ = ctx.read(Key::of(KeyTag::Scalar, i));
        }
        for i in 0..4u64 {
            ctx.write(Key::of(KeyTag::Scalar, i), Value::scalar(i));
        }
        assert_eq!(ctx.remaining_budget(), 0);
        assert!(ctx.budget_exhausted());
    }

    #[test]
    fn rng_is_deterministic_per_round_and_machine() {
        let cfg = test_config();
        let draw = |machine: usize, round: usize| -> u64 {
            let mut ctx = MachineContext::new(machine, round, snapshot_with(&[]), &cfg);
            ctx.rng().gen()
        };
        assert_eq!(draw(3, 2), draw(3, 2));
        assert_ne!(draw(3, 2), draw(4, 2));
        assert_ne!(draw(3, 2), draw(3, 3));
    }

    #[test]
    fn read_many_budget_accounting_matches_single_reads_exactly() {
        let pairs: Vec<(u64, u64)> = (0..40).map(|i| (i, i * 2)).collect();
        let cfg = test_config();
        let keys: Vec<Key> = (0..60u64).map(|i| Key::of(KeyTag::Scalar, i)).collect();

        // One context issues 60 single reads, the other one batched read.
        let mut singles = MachineContext::new(0, 1, snapshot_with(&pairs), &cfg);
        let single_results: Vec<Option<Value>> = keys.iter().map(|&k| singles.read(k)).collect();

        let mut batched = MachineContext::new(0, 1, snapshot_with(&pairs), &cfg);
        let batch_results = batched.read_many(&keys);

        assert_eq!(single_results, batch_results);
        assert_eq!(singles.queries_issued(), 60);
        assert_eq!(batched.queries_issued(), singles.queries_issued());
        assert_eq!(batched.remaining_budget(), singles.remaining_budget());
        assert_eq!(batched.budget_exhausted(), singles.budget_exhausted());
    }

    #[test]
    fn read_many_into_reuses_buffer_and_counts_queries() {
        let snap = snapshot_with(&[(1, 10), (2, 20)]);
        let cfg = test_config();
        let mut ctx = MachineContext::new(0, 1, snap, &cfg);
        let mut buf = vec![Some(Value::scalar(999))]; // stale contents must go
        ctx.read_many_into(&[Key::of(KeyTag::Scalar, 2)], &mut buf);
        assert_eq!(buf, vec![Some(Value::scalar(20))]);
        ctx.read_many_into(&[], &mut buf);
        assert!(buf.is_empty());
        assert_eq!(ctx.queries_issued(), 1);
    }

    #[test]
    fn multiplicity_and_indexed_reads() {
        let store = ShardedStore::new(2);
        let key = Key::of(KeyTag::Scalar, 5);
        store.write(key, Value::scalar(1));
        store.write(key, Value::scalar(2));
        let cfg = test_config();
        let mut ctx = MachineContext::new(0, 1, store.freeze(), &cfg);
        assert_eq!(ctx.multiplicity(key), 2);
        assert_eq!(ctx.read_indexed(key, 1), Some(Value::scalar(2)));
        assert_eq!(ctx.read_indexed(key, 2), None);
        assert_eq!(ctx.queries_issued(), 3);
    }
}

//! Error type of the AMPC runtime.

use std::fmt;

/// Errors produced by the AMPC runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AmpcError {
    /// A machine exceeded its per-round query/write budget while the
    /// configuration demanded strict enforcement.
    BudgetExceeded {
        /// Round in which the violation happened.
        round: usize,
        /// Machine that violated its budget.
        machine: usize,
        /// Queries the machine had issued when it hit the limit.
        queries: u64,
        /// Writes the machine had issued when it hit the limit.
        writes: u64,
        /// The configured per-round budget.
        budget: u64,
    },
    /// An explicitly requested DDS shard count lies outside the supported
    /// range (`1..=MAX_SHARDS`).  Raised by `AmpcConfig::with_num_shards`
    /// instead of silently clamping a configuration bug.
    InvalidShardCount {
        /// The shard count the caller asked for.
        requested: usize,
        /// The maximum supported shard count (`config::MAX_SHARDS`).
        max: usize,
    },
    /// The algorithm asked for more machines than the configuration allows.
    TooManyMachines {
        /// Machines requested for the round.
        requested: usize,
        /// Machines available under the configuration.
        available: usize,
    },
    /// An algorithm-level invariant failed (used by drivers to surface
    /// unexpected states without panicking inside worker threads).
    Algorithm(String),
}

impl fmt::Display for AmpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmpcError::BudgetExceeded { round, machine, queries, writes, budget } => write!(
                f,
                "machine {machine} exceeded its budget in round {round}: {queries} queries + {writes} writes > {budget}"
            ),
            AmpcError::InvalidShardCount { requested, max } => {
                write!(f, "requested {requested} DDS shards, supported range is 1..={max}")
            }
            AmpcError::TooManyMachines { requested, available } => {
                write!(f, "round requested {requested} machines but only {available} are available")
            }
            AmpcError::Algorithm(msg) => write!(f, "algorithm error: {msg}"),
        }
    }
}

impl std::error::Error for AmpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_readably() {
        let e = AmpcError::BudgetExceeded {
            round: 2,
            machine: 7,
            queries: 100,
            writes: 5,
            budget: 64,
        };
        let text = e.to_string();
        assert!(text.contains("machine 7"));
        assert!(text.contains("round 2"));
        assert!(text.contains("> 64"));

        let e = AmpcError::TooManyMachines {
            requested: 10,
            available: 4,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("4"));

        let e = AmpcError::Algorithm("bad state".into());
        assert!(e.to_string().contains("bad state"));

        let e = AmpcError::InvalidShardCount {
            requested: 4096,
            max: 1024,
        };
        assert!(e.to_string().contains("4096"));
        assert!(e.to_string().contains("1..=1024"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = AmpcError::Algorithm("x".into());
        let b = AmpcError::Algorithm("x".into());
        assert_eq!(a, b);
    }
}

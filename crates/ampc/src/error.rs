//! Error type of the AMPC runtime.

use std::fmt;

/// Errors produced by the AMPC runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AmpcError {
    /// A machine exceeded its per-round query/write budget while the
    /// configuration demanded strict enforcement.
    BudgetExceeded {
        /// Round in which the violation happened.
        round: usize,
        /// Machine that violated its budget.
        machine: usize,
        /// Queries the machine had issued when it hit the limit.
        queries: u64,
        /// Writes the machine had issued when it hit the limit.
        writes: u64,
        /// The configured per-round budget.
        budget: u64,
    },
    /// An explicitly requested DDS shard count lies outside the supported
    /// range (`1..=MAX_SHARDS`).  Raised by `AmpcConfig::with_num_shards`
    /// instead of silently clamping a configuration bug.
    InvalidShardCount {
        /// The shard count the caller asked for.
        requested: usize,
        /// The maximum supported shard count (`config::MAX_SHARDS`).
        max: usize,
    },
    /// The algorithm asked for more machines than the configuration allows.
    TooManyMachines {
        /// Machines requested for the round.
        requested: usize,
        /// Machines available under the configuration.
        available: usize,
    },
    /// An algorithm-level invariant failed (used by drivers to surface
    /// unexpected states without panicking inside worker threads).
    Algorithm(String),
    /// The DDS backend failed underneath the runtime — a transport error or
    /// an owner-thread panic, surfaced through the round boundary instead
    /// of a hung or cryptically broken channel.  Convert a
    /// [`ampc_dds::TransportError`] with `From`.
    Backend {
        /// Human-readable failure description (worker, cause, and any
        /// harvested owner panic payload).
        message: String,
    },
    /// A backend name did not parse (`DdsBackendKind::from_str`).
    UnknownBackend {
        /// The unrecognized name.
        requested: String,
    },
    /// A cluster endpoint list or owner count failed validation
    /// (`config::parse_endpoint_list`, `AmpcConfig::with_cluster_owners`) —
    /// malformed operator input surfaces as this typed error, never a
    /// panic.
    InvalidEndpointList {
        /// The offending input (the malformed entry, or the whole list for
        /// list-level problems).
        requested: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl From<ampc_dds::TransportError> for AmpcError {
    fn from(err: ampc_dds::TransportError) -> Self {
        AmpcError::Backend {
            message: err.to_string(),
        }
    }
}

impl fmt::Display for AmpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmpcError::BudgetExceeded { round, machine, queries, writes, budget } => write!(
                f,
                "machine {machine} exceeded its budget in round {round}: {queries} queries + {writes} writes > {budget}"
            ),
            AmpcError::InvalidShardCount { requested, max } => {
                write!(f, "requested {requested} DDS shards, supported range is 1..={max}")
            }
            AmpcError::TooManyMachines { requested, available } => {
                write!(f, "round requested {requested} machines but only {available} are available")
            }
            AmpcError::Algorithm(msg) => write!(f, "algorithm error: {msg}"),
            AmpcError::Backend { message } => write!(f, "DDS backend failure: {message}"),
            AmpcError::UnknownBackend { requested } => {
                write!(
                    f,
                    "unknown DDS backend {requested:?} (expected local, channel, remote or cluster)"
                )
            }
            AmpcError::InvalidEndpointList { requested, reason } => {
                write!(f, "invalid cluster endpoint list {requested:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for AmpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_readably() {
        let e = AmpcError::BudgetExceeded {
            round: 2,
            machine: 7,
            queries: 100,
            writes: 5,
            budget: 64,
        };
        let text = e.to_string();
        assert!(text.contains("machine 7"));
        assert!(text.contains("round 2"));
        assert!(text.contains("> 64"));

        let e = AmpcError::TooManyMachines {
            requested: 10,
            available: 4,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("4"));

        let e = AmpcError::Algorithm("bad state".into());
        assert!(e.to_string().contains("bad state"));

        let e = AmpcError::InvalidShardCount {
            requested: 4096,
            max: 1024,
        };
        assert!(e.to_string().contains("4096"));
        assert!(e.to_string().contains("1..=1024"));

        let e = AmpcError::UnknownBackend {
            requested: "bigtable".into(),
        };
        assert!(e.to_string().contains("bigtable"));
        assert!(e.to_string().contains("remote"));
        assert!(e.to_string().contains("cluster"));

        let e = AmpcError::InvalidEndpointList {
            requested: "nocolon".into(),
            reason: "missing the :port suffix".into(),
        };
        assert!(e.to_string().contains("nocolon"));
        assert!(e.to_string().contains(":port"));
    }

    #[test]
    fn transport_errors_convert_to_typed_backend_errors() {
        let transport = ampc_dds::TransportError::PeerClosed {
            worker: 2,
            panic: Some("owner asked to dump unknown epoch 9".into()),
        };
        let err: AmpcError = transport.into();
        let text = err.to_string();
        assert!(text.contains("backend failure"), "{text}");
        assert!(text.contains("owner 2 panicked"), "{text}");
        assert!(text.contains("unknown epoch 9"), "{text}");
    }

    #[test]
    fn errors_are_comparable() {
        let a = AmpcError::Algorithm("x".into());
        let b = AmpcError::Algorithm("x".into());
        assert_eq!(a, b);
    }
}

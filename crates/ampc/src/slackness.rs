//! Parallel slackness: multiplexing virtual machines onto physical workers.
//!
//! Section 2.1 of the paper observes that the per-query latency of an
//! RDMA-backed DDS can be hidden by splitting each physical machine into
//! many *virtual* machines and context-switching between them whenever one
//! blocks on a remote read.  In this simulation "physical machines" are
//! worker threads, and the same idea appears as work distribution: the
//! runtime executes `P` virtual machines on `threads ≪ P` workers by
//! assigning virtual machines to workers dynamically.
//!
//! [`partition_virtual_machines`] computes the static block partition used
//! for accounting and tests; the runtime itself uses dynamic (work-stealing
//! style) assignment via an atomic cursor, which has the same load profile
//! in the balanced workloads the model assumes.

use std::ops::Range;

/// Split `virtual_machines` ids into contiguous blocks, one per worker.
///
/// Blocks differ in size by at most one, and empty trailing blocks are
/// returned when there are more workers than virtual machines.
pub fn partition_virtual_machines(virtual_machines: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.max(1);
    let base = virtual_machines / workers;
    let extra = virtual_machines % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0usize;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// The slackness factor `T^δ` the paper suggests: how many virtual machines
/// each physical worker simulates.
pub fn slackness_factor(virtual_machines: usize, workers: usize) -> f64 {
    if workers == 0 {
        virtual_machines as f64
    } else {
        virtual_machines as f64 / workers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_machines_exactly_once() {
        for &(vms, workers) in &[(10usize, 3usize), (100, 7), (5, 8), (0, 4), (16, 16)] {
            let ranges = partition_virtual_machines(vms, workers);
            assert_eq!(ranges.len(), workers.max(1));
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, vms, "vms={vms} workers={workers}");
            // Contiguity and order.
            let mut expected_start = 0;
            for r in &ranges {
                assert_eq!(r.start, expected_start);
                expected_start = r.end;
            }
            // Balance within 1.
            let max = ranges.iter().map(|r| r.len()).max().unwrap();
            let min = ranges.iter().map(|r| r.len()).min().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn zero_workers_is_clamped() {
        let ranges = partition_virtual_machines(4, 0);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0], 0..4);
    }

    #[test]
    fn slackness_factor_matches_ratio() {
        assert!((slackness_factor(100, 4) - 25.0).abs() < 1e-9);
        assert!((slackness_factor(5, 0) - 5.0).abs() < 1e-9);
    }
}

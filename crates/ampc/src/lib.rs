//! # ampc-runtime — the AMPC model executor
//!
//! This crate implements the Adaptive Massively Parallel Computation model
//! of Behnezhad et al. (SPAA 2019) as an executable runtime:
//!
//! * [`AmpcConfig`] derives the model parameters — space per machine
//!   `S = n^ε`, machine count `P`, total space `T` and the per-round `O(S)`
//!   communication budgets — from the input size and the exponent ε.
//! * [`AmpcRuntime`] executes rounds: every virtual machine runs a closure
//!   against a [`MachineContext`] which gives *adaptive* random-read access
//!   to the previous round's distributed data store and buffered writes into
//!   the next one.  Machines run in parallel on worker threads.
//! * [`RunStats`] / [`RoundStats`] record the quantities the paper's theorems
//!   bound: number of rounds, queries and writes in total and per machine,
//!   budget violations and fault-injection restarts.
//! * [`FaultPlan`] schedules machine failures to exercise the model's
//!   restart-from-snapshot fault-tolerance story.
//!
//! ```
//! use ampc_runtime::{AmpcConfig, AmpcRuntime};
//! use ampc_dds::{Key, KeyTag, Value};
//!
//! // Store g(x) = x + 1 for x in 0..100, then chase 50 pointers in ONE round.
//! let config = AmpcConfig::for_graph(10_000, 0, 0.5);
//! let mut runtime = AmpcRuntime::new(config);
//! runtime.load_input((0..100u64).map(|x| (Key::of(KeyTag::Successor, x), Value::scalar(x + 1))));
//! let reached = runtime
//!     .run_round(1, |ctx| {
//!         let mut x = 0u64;
//!         for _ in 0..50 {
//!             x = ctx.read(Key::of(KeyTag::Successor, x)).unwrap().x;
//!         }
//!         x
//!     })
//!     .unwrap();
//! assert_eq!(reached, vec![50]);
//! assert_eq!(runtime.stats().num_rounds(), 1);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod context;
pub mod error;
pub mod fault;
pub mod runtime;
pub mod slackness;
pub mod stats;

pub use config::{AmpcConfig, BudgetMode, DEFAULT_EPSILON};
pub use context::MachineContext;
pub use error::AmpcError;
pub use fault::FaultPlan;
pub use runtime::AmpcRuntime;
pub use stats::{RoundStats, RunStats};

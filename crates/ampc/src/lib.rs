//! # ampc-runtime — the AMPC model executor
//!
//! This crate implements the Adaptive Massively Parallel Computation model
//! of Behnezhad et al. (SPAA 2019) as an executable runtime:
//!
//! * [`AmpcConfig`] derives the model parameters — space per machine
//!   `S = n^ε`, machine count `P`, total space `T` and the per-round `O(S)`
//!   communication budgets — from the input size and the exponent ε.
//! * [`AmpcRuntime`] executes rounds: every virtual machine runs a closure
//!   against a [`MachineContext`] which gives *adaptive* random-read access
//!   to the previous round's distributed data store and buffered writes into
//!   the next one.  Machines run in parallel on worker threads.  The runtime
//!   is generic over the [`DdsBackend`] serving the stores; the
//!   [`with_dds_backend!`] macro instantiates it from
//!   [`AmpcConfig::backend`](config::AmpcConfig), so the backend (in-process
//!   [`LocalBackend`], message-passing [`ChannelBackend`], or socket-backed
//!   [`TcpBackend`]) is purely a configuration choice — and parseable from
//!   CLI/env strings via `DdsBackendKind::from_str`.
//! * [`RunStats`] / [`RoundStats`] record the quantities the paper's theorems
//!   bound: number of rounds, queries and writes in total and per machine,
//!   budget violations and fault-injection restarts.
//! * [`FaultPlan`] schedules machine failures to exercise the model's
//!   restart-from-snapshot fault-tolerance story.
//!
//! # Round lifecycle
//!
//! Each call to [`AmpcRuntime::run_round`] drives one epoch through the
//! pipeline implemented by `ampc_dds`:
//!
//! 1. **Execute** — virtual machines are multiplexed onto worker threads;
//!    every machine reads the frozen snapshot of `D_{i-1}` (single keys via
//!    [`MachineContext::read`], pipelined batches via
//!    [`MachineContext::read_many`] — a batch of `k` keys costs exactly `k`
//!    queries, so budget semantics never depend on batching) and buffers
//!    its writes locally.
//! 2. **Commit** — when all machines finish, their write buffers are
//!    concatenated in (machine id, write order) order, partitioned by
//!    destination shard, and committed with one lock acquisition per shard,
//!    distinct shards in parallel.  Per-key multi-value indices are
//!    reproducible because a key lives on exactly one shard.
//! 3. **Freeze** — the store is frozen shard-parallel into the compact
//!    read-only snapshot (`D_i`) the next round will read.
//!
//! [`AmpcRuntime::scatter`] and [`AmpcRuntime::load_input`] push
//! driver-assembled pairs through the same commit path.
//!
//! ```
//! use ampc_runtime::{AmpcConfig, AmpcRuntime};
//! use ampc_dds::{Key, KeyTag, Value};
//!
//! // Store g(x) = x + 1 for x in 0..100, then chase 50 pointers in ONE round.
//! let config = AmpcConfig::for_graph(10_000, 0, 0.5);
//! let mut runtime = AmpcRuntime::new(config);
//! runtime.load_input((0..100u64).map(|x| (Key::of(KeyTag::Successor, x), Value::scalar(x + 1))));
//! let reached = runtime
//!     .run_round(1, |ctx| {
//!         let mut x = 0u64;
//!         for _ in 0..50 {
//!             x = ctx.read(Key::of(KeyTag::Successor, x)).unwrap().x;
//!         }
//!         x
//!     })
//!     .unwrap();
//! assert_eq!(reached, vec![50]);
//! assert_eq!(runtime.stats().num_rounds(), 1);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod context;
pub mod error;
pub mod fault;
pub mod runtime;
pub mod slackness;
pub mod stats;

pub use config::{
    parse_endpoint_list, AmpcConfig, BudgetMode, DdsBackendKind, DEFAULT_EPSILON,
    MAX_CLUSTER_OWNERS, MAX_SHARDS,
};
pub use context::{MachineContext, ReadTicket};
pub use error::AmpcError;
pub use fault::FaultPlan;
pub use runtime::AmpcRuntime;
pub use stats::{RoundStats, RunStats};

// Backend surface, re-exported so the `with_dds_backend!` macro (and
// algorithm crates) can name everything through `ampc_runtime`.
pub use ampc_dds::{
    ChannelBackend, ClusterBackend, DdsBackend, LocalBackend, RemoteBackend, SnapshotView,
    TcpBackend,
};

//! Configuration of an AMPC execution.
//!
//! The model's parameters (Section 2 of the paper): input size `N`, space
//! per machine `S = Θ(N^{1-Ω(1)})` — for graph inputs the paper uses
//! `S = n^ε` for a constant `ε ∈ (0, 1)` — number of machines `P`, and total
//! space `T = S · P = O(N polylog N)`.  [`AmpcConfig`] derives `S`, `P` and
//! `T` from the input size and `ε`, and controls how strictly the per-round
//! query/write budgets are enforced.

use crate::error::AmpcError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default space exponent ε used when the caller does not care.
pub const DEFAULT_EPSILON: f64 = 0.5;

/// Hard ceiling on the number of DDS shards.
///
/// Historically 256 to keep per-shard lock overhead sensible when the
/// end-of-round commit partitioned writes on a single thread; with the
/// parallel partition pass the per-shard fixed cost is paid across workers,
/// so the derived cap is now 1024.  Explicit requests beyond the ceiling are
/// rejected with [`AmpcError::InvalidShardCount`] rather than silently
/// clamped — see [`AmpcConfig::with_num_shards`].
pub const MAX_SHARDS: usize = 1024;

/// Hard ceiling on the number of cluster owner processes.
///
/// The cluster backend is monomorphised per owner count (the conformance
/// suite holds `cluster(2)` and `cluster(4)` side by side as distinct
/// types), so the runtime dispatch enumerates the supported counts; counts
/// beyond the ceiling are rejected at the configuration boundary with
/// [`AmpcError::InvalidEndpointList`] rather than deep inside a run.
pub const MAX_CLUSTER_OWNERS: usize = 4;

/// Which [`ampc_dds::DdsBackend`] implementation a runtime uses.
///
/// Algorithms never branch on this: the runtime is generic over the backend
/// and the `with_dds_backend!` macro instantiates it from the config, so the
/// same driver code runs on either store.  The cross-backend determinism
/// suite (`tests/backend_determinism.rs`) pins down that the choice is
/// unobservable in algorithm outputs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DdsBackendKind {
    /// In-process sharded store ([`ampc_dds::LocalBackend`]): shared memory,
    /// lock-free frozen reads.  The default and the fastest.
    #[default]
    Local,
    /// Message-passing store ([`ampc_dds::ChannelBackend`]): shard groups
    /// owned by dedicated threads, write-side requests crossing in-process
    /// channels as `ampc_dds::proto` messages, frozen epochs published
    /// zero-copy.  Simulates a multi-process deployment.
    Channel,
    /// Socket-backed store ([`ampc_dds::TcpBackend`]): the identical owner
    /// protocol spoken as length-prefixed `ampc_dds::proto` frames over
    /// localhost TCP, frozen epochs fetched and rebuilt as local replicas.
    /// The deployable shape of the store.
    Remote,
    /// Multi-owner-process store ([`ampc_dds::ClusterBackend`]): N
    /// standalone serving processes each owning a contiguous shard range,
    /// discovered through the shard map in every lease grant; epoch advance
    /// is a client-coordinated two-phase freeze/publish barrier.  Spawns a
    /// local cluster of [`AmpcConfig::cluster_owners`] owners, or connects
    /// to [`AmpcConfig::cluster_endpoints`] when set.
    Cluster,
}

impl fmt::Display for DdsBackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DdsBackendKind::Local => "local",
            DdsBackendKind::Channel => "channel",
            DdsBackendKind::Remote => "remote",
            DdsBackendKind::Cluster => "cluster",
        };
        f.write_str(name)
    }
}

impl std::str::FromStr for DdsBackendKind {
    type Err = AmpcError;

    /// Parse a backend name (`local` / `channel` / `remote` / `cluster`,
    /// case- and whitespace-insensitive; `tcp` is accepted as an alias for
    /// `remote`), so binaries and examples can select the backend from a
    /// CLI argument or environment variable.
    fn from_str(name: &str) -> Result<Self, AmpcError> {
        match name.trim().to_ascii_lowercase().as_str() {
            "local" => Ok(DdsBackendKind::Local),
            "channel" => Ok(DdsBackendKind::Channel),
            "remote" | "tcp" => Ok(DdsBackendKind::Remote),
            "cluster" => Ok(DdsBackendKind::Cluster),
            _ => Err(AmpcError::UnknownBackend {
                requested: name.to_string(),
            }),
        }
    }
}

/// How budget violations are handled by the runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetMode {
    /// A machine exceeding its per-round query/write budget aborts the run
    /// with [`crate::AmpcError::BudgetExceeded`].
    Strict,
    /// Violations are recorded in the round statistics but execution
    /// continues.  This is the default: the paper's budgets hold with high
    /// probability, and the recorded counts let tests assert the bound while
    /// benches keep running on unlucky random draws.
    Record,
}

/// Parameters of an AMPC execution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AmpcConfig {
    /// Problem-size parameter the space bound is expressed in (the paper
    /// uses the number of vertices `n` for graph problems).
    pub size_parameter: usize,
    /// Space exponent ε: each machine has `S = ⌈size_parameter^ε⌉` space.
    pub epsilon: f64,
    /// Multiplier on the per-round budgets (the constants hidden in `O(S)`).
    pub budget_factor: f64,
    /// Total space available, `T`.  Defaults to `Θ(N)` where `N` is the
    /// input size; algorithms that need `Θ(N log N)` pass it explicitly.
    pub total_space: usize,
    /// Budget enforcement mode.
    pub budget_mode: BudgetMode,
    /// Worker threads used to execute machines in parallel.  `0` means "one
    /// per available CPU".
    pub threads: usize,
    /// Seed for all randomness the runtime itself draws (machine assignment,
    /// per-machine RNG streams).
    pub seed: u64,
    /// Which DDS backend the runtime instantiates.
    pub backend: DdsBackendKind,
    /// Explicit shard count, overriding the `min(P, MAX_SHARDS)` derivation.
    /// Set through [`AmpcConfig::with_num_shards`], which validates the
    /// range.
    pub num_shards_override: Option<usize>,
    /// Address of an external DDS owner process (`ampc_dds::serve`).  When
    /// set and `backend` is [`DdsBackendKind::Remote`], runtimes connect
    /// their leased sessions to this process instead of spawning in-process
    /// owner threads — the multi-host deployment shape.  Ignored by the
    /// in-process backends.
    pub remote_endpoint: Option<String>,
    /// Owner-process count for a locally spawned cluster
    /// ([`DdsBackendKind::Cluster`] with no endpoints).  Set through
    /// [`AmpcConfig::with_cluster_owners`], which validates the range.
    pub cluster_owners: usize,
    /// Endpoints of an already-running cluster, one per owner in node
    /// order.  When set and `backend` is [`DdsBackendKind::Cluster`],
    /// runtimes connect to these processes instead of spawning a local
    /// cluster.  Set through [`AmpcConfig::with_cluster_endpoints`] or
    /// parsed from a CLI/env string with [`parse_endpoint_list`].
    pub cluster_endpoints: Option<Vec<String>>,
}

impl AmpcConfig {
    /// Configuration for an input of size `input_size` (for graphs,
    /// `N = n + m`) using `size_parameter` (for graphs, `n`) and exponent ε.
    pub fn new(size_parameter: usize, input_size: usize, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must lie in (0, 1), got {epsilon}"
        );
        AmpcConfig {
            size_parameter: size_parameter.max(1),
            epsilon,
            budget_factor: 8.0,
            total_space: input_size.max(1),
            budget_mode: BudgetMode::Record,
            threads: 0,
            seed: 0x5eed,
            backend: DdsBackendKind::Local,
            num_shards_override: None,
            remote_endpoint: None,
            cluster_owners: 2,
            cluster_endpoints: None,
        }
    }

    /// Convenience constructor for graph inputs: `size_parameter = n`,
    /// `input_size = n + m`.
    pub fn for_graph(n: usize, m: usize, epsilon: f64) -> Self {
        AmpcConfig::new(n, n + m, epsilon)
    }

    /// Builder-style: set the budget multiplier.
    pub fn with_budget_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.budget_factor = factor;
        self
    }

    /// Builder-style: set the budget mode.
    pub fn with_budget_mode(mut self, mode: BudgetMode) -> Self {
        self.budget_mode = mode;
        self
    }

    /// Builder-style: set the total space `T`.
    pub fn with_total_space(mut self, total: usize) -> Self {
        self.total_space = total.max(1);
        self
    }

    /// Builder-style: set the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style: set the runtime seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: select the DDS backend.
    pub fn with_backend(mut self, backend: DdsBackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Builder-style: serve the DDS from an external owner process at
    /// `endpoint` (see `ampc_dds::serve`), and select the socket backend
    /// that speaks to it.  Every runtime built from this config — including
    /// the sub-runtimes algorithm drivers derive — opens its own leased
    /// session against that process.
    pub fn with_remote_endpoint(mut self, endpoint: impl Into<String>) -> Self {
        self.remote_endpoint = Some(endpoint.into());
        self.backend = DdsBackendKind::Remote;
        self
    }

    /// Builder-style: run the DDS as a locally spawned cluster of `owners`
    /// serving processes, and select the cluster backend.
    ///
    /// # Errors
    /// [`AmpcError::InvalidEndpointList`] if `owners` is zero or exceeds
    /// [`MAX_CLUSTER_OWNERS`].
    pub fn with_cluster_owners(mut self, owners: usize) -> Result<Self, AmpcError> {
        if owners == 0 || owners > MAX_CLUSTER_OWNERS {
            return Err(AmpcError::InvalidEndpointList {
                requested: owners.to_string(),
                reason: format!("cluster owner counts must lie in 1..={MAX_CLUSTER_OWNERS}"),
            });
        }
        self.cluster_owners = owners;
        self.cluster_endpoints = None;
        self.backend = DdsBackendKind::Cluster;
        Ok(self)
    }

    /// Builder-style: serve the DDS from an already-running cluster at
    /// `endpoints` (one per owner, node order — each started with
    /// `ampc_dds::serve_cluster` over the identical peer list), and select
    /// the cluster backend.
    ///
    /// # Errors
    /// [`AmpcError::InvalidEndpointList`] if the list is empty, longer than
    /// [`MAX_CLUSTER_OWNERS`], or any endpoint is malformed (see
    /// [`parse_endpoint_list`] for the accepted shape).
    pub fn with_cluster_endpoints(mut self, endpoints: Vec<String>) -> Result<Self, AmpcError> {
        let endpoints = parse_endpoint_list(&endpoints.join(","))?;
        self.cluster_owners = endpoints.len();
        self.cluster_endpoints = Some(endpoints);
        self.backend = DdsBackendKind::Cluster;
        Ok(self)
    }

    /// Builder-style: set an explicit DDS shard count.
    ///
    /// # Errors
    /// [`AmpcError::InvalidShardCount`] if `shards` is zero or exceeds
    /// [`MAX_SHARDS`] — out-of-range counts are a configuration bug and are
    /// rejected rather than silently clamped.
    pub fn with_num_shards(mut self, shards: usize) -> Result<Self, AmpcError> {
        if shards == 0 || shards > MAX_SHARDS {
            return Err(AmpcError::InvalidShardCount {
                requested: shards,
                max: MAX_SHARDS,
            });
        }
        self.num_shards_override = Some(shards);
        Ok(self)
    }

    /// Derive the config for a sub-computation: same ε, seed, budget
    /// settings, thread cap and backend, with the size parameters replaced.
    ///
    /// Algorithm drivers use this so one caller-supplied config selects the
    /// backend (and tuning) for *every* runtime the algorithm creates, while
    /// each stage still sizes `S`/`P`/`T` from its own input.
    pub fn derive(&self, size_parameter: usize, input_size: usize) -> AmpcConfig {
        let mut derived = self.clone();
        derived.size_parameter = size_parameter.max(1);
        derived.total_space = input_size.max(1);
        derived
    }

    /// Space per machine, `S = ⌈size_parameter^ε⌉` (at least 2).
    pub fn space_per_machine(&self) -> usize {
        ((self.size_parameter as f64).powf(self.epsilon).ceil() as usize).max(2)
    }

    /// Number of machines, `P = ⌈T / S⌉` (at least 1).
    pub fn num_machines(&self) -> usize {
        self.total_space.div_ceil(self.space_per_machine()).max(1)
    }

    /// Per-machine, per-round query/write budget: `budget_factor · S`.
    pub fn round_budget(&self) -> u64 {
        (self.budget_factor * self.space_per_machine() as f64).ceil() as u64
    }

    /// Number of shards used for the DDS.  The paper assumes the DDS is
    /// served by `P` machines; we use `min(P, MAX_SHARDS)` shards — or the
    /// validated [`AmpcConfig::with_num_shards`] override — to keep
    /// per-shard fixed costs sensible at simulation scale.
    pub fn num_shards(&self) -> usize {
        match self.num_shards_override {
            Some(shards) => shards,
            None => self.num_machines().clamp(1, MAX_SHARDS),
        }
    }

    /// Worker threads to use, resolving `0` to the number of CPUs.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            ampc_dds::default_parallelism()
        } else {
            self.threads
        }
    }
}

/// Parse a comma-separated cluster endpoint list (the `--connect-cluster`
/// CLI argument and the `AMPC_ENDPOINTS` environment variable).
///
/// Accepted shape: 1 to [`MAX_CLUSTER_OWNERS`] comma-separated
/// `host:port` entries, whitespace around entries ignored.  Each entry
/// must have a non-empty host and a numeric port in `1..=65535` after its
/// *last* colon (so bracketed IPv6 literals like `[::1]:7471` pass).
///
/// # Errors
/// [`AmpcError::InvalidEndpointList`] naming the offending input and why
/// it was rejected — malformed operator input is a configuration error, not
/// a panic.
pub fn parse_endpoint_list(list: &str) -> Result<Vec<String>, AmpcError> {
    let reject = |requested: &str, reason: String| {
        Err(AmpcError::InvalidEndpointList {
            requested: requested.to_string(),
            reason,
        })
    };
    if list.trim().is_empty() {
        return reject(list, "expected at least one host:port endpoint".into());
    }
    let entries: Vec<&str> = list.split(',').map(str::trim).collect();
    if entries.len() > MAX_CLUSTER_OWNERS {
        return reject(
            list,
            format!(
                "{} endpoints exceed the supported 1..={MAX_CLUSTER_OWNERS} owners",
                entries.len()
            ),
        );
    }
    let mut endpoints = Vec::with_capacity(entries.len());
    for entry in entries {
        let Some((host, port)) = entry.rsplit_once(':') else {
            return reject(entry, "missing the :port suffix".into());
        };
        if host.is_empty() {
            return reject(entry, "missing the host".into());
        }
        match port.parse::<u16>() {
            Ok(0) | Err(_) => return reject(entry, format!("port {port:?} is not in 1..=65535")),
            Ok(_) => {}
        }
        endpoints.push(entry.to_string());
    }
    Ok(endpoints)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_and_machine_counts_follow_the_model() {
        let cfg = AmpcConfig::for_graph(10_000, 40_000, 0.5);
        assert_eq!(cfg.space_per_machine(), 100); // 10_000^0.5
        assert_eq!(cfg.num_machines(), 500); // (10_000 + 40_000) / 100
        assert_eq!(cfg.total_space, 50_000);
        assert!(cfg.round_budget() >= 100);
    }

    #[test]
    fn epsilon_changes_machine_granularity() {
        let coarse = AmpcConfig::for_graph(10_000, 0, 0.75);
        let fine = AmpcConfig::for_graph(10_000, 0, 0.25);
        assert!(coarse.space_per_machine() > fine.space_per_machine());
        assert!(coarse.num_machines() < fine.num_machines());
    }

    #[test]
    fn builders_apply() {
        let cfg = AmpcConfig::for_graph(100, 100, 0.5)
            .with_budget_factor(2.0)
            .with_budget_mode(BudgetMode::Strict)
            .with_total_space(1000)
            .with_threads(3)
            .with_seed(99);
        assert_eq!(cfg.budget_mode, BudgetMode::Strict);
        assert_eq!(cfg.total_space, 1000);
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.effective_threads(), 3);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.round_budget(), 20);
    }

    #[test]
    fn tiny_inputs_still_get_valid_parameters() {
        let cfg = AmpcConfig::for_graph(1, 0, 0.5);
        assert!(cfg.space_per_machine() >= 2);
        assert!(cfg.num_machines() >= 1);
        assert!(cfg.num_shards() >= 1);
    }

    #[test]
    fn shards_are_capped() {
        let cfg = AmpcConfig::for_graph(1_000_000, 10_000_000, 0.25);
        assert_eq!(cfg.num_shards(), MAX_SHARDS);
    }

    #[test]
    fn explicit_shard_counts_are_validated_at_the_boundary() {
        let cfg = AmpcConfig::for_graph(100, 100, 0.5);
        // Both edges of the valid range are accepted…
        assert_eq!(cfg.clone().with_num_shards(1).unwrap().num_shards(), 1);
        assert_eq!(
            cfg.clone()
                .with_num_shards(MAX_SHARDS)
                .unwrap()
                .num_shards(),
            MAX_SHARDS
        );
        // …and both sides just past it are rejected with the typed error.
        assert_eq!(
            cfg.clone().with_num_shards(0).unwrap_err(),
            AmpcError::InvalidShardCount {
                requested: 0,
                max: MAX_SHARDS
            }
        );
        assert_eq!(
            cfg.clone().with_num_shards(MAX_SHARDS + 1).unwrap_err(),
            AmpcError::InvalidShardCount {
                requested: MAX_SHARDS + 1,
                max: MAX_SHARDS
            }
        );
    }

    #[test]
    fn derive_keeps_tuning_and_replaces_sizes() {
        let template = AmpcConfig::for_graph(100, 100, 0.25)
            .with_seed(7)
            .with_threads(3)
            .with_backend(DdsBackendKind::Channel)
            .with_budget_factor(2.5);
        let derived = template.derive(5_000, 20_000);
        assert_eq!(derived.size_parameter, 5_000);
        assert_eq!(derived.total_space, 20_000);
        assert_eq!(derived.epsilon, 0.25);
        assert_eq!(derived.seed, 7);
        assert_eq!(derived.threads, 3);
        assert_eq!(derived.backend, DdsBackendKind::Channel);
        assert_eq!(derived.budget_factor, 2.5);
    }

    #[test]
    fn remote_endpoints_select_the_socket_backend_and_survive_derive() {
        let cfg = AmpcConfig::for_graph(100, 100, 0.5).with_remote_endpoint("127.0.0.1:7471");
        assert_eq!(cfg.backend, DdsBackendKind::Remote);
        assert_eq!(cfg.remote_endpoint.as_deref(), Some("127.0.0.1:7471"));
        // Sub-computations must keep talking to the same owner process.
        let derived = cfg.derive(10, 10);
        assert_eq!(derived.remote_endpoint.as_deref(), Some("127.0.0.1:7471"));
        assert_eq!(derived.backend, DdsBackendKind::Remote);
    }

    #[test]
    fn cluster_builders_select_the_cluster_backend() {
        let cfg = AmpcConfig::for_graph(100, 100, 0.5)
            .with_cluster_owners(3)
            .unwrap();
        assert_eq!(cfg.backend, DdsBackendKind::Cluster);
        assert_eq!(cfg.cluster_owners, 3);
        assert_eq!(cfg.cluster_endpoints, None);
        // The cluster topology must survive `derive` so sub-computations
        // keep talking to the same owners.
        let derived = cfg.derive(10, 10);
        assert_eq!(derived.backend, DdsBackendKind::Cluster);
        assert_eq!(derived.cluster_owners, 3);

        let cfg = AmpcConfig::for_graph(100, 100, 0.5)
            .with_cluster_endpoints(vec!["127.0.0.1:7471".into(), "127.0.0.1:7472".into()])
            .unwrap();
        assert_eq!(cfg.backend, DdsBackendKind::Cluster);
        assert_eq!(cfg.cluster_owners, 2);
        assert_eq!(
            cfg.cluster_endpoints.as_deref(),
            Some(&["127.0.0.1:7471".to_string(), "127.0.0.1:7472".to_string()][..])
        );

        // Out-of-range owner counts are configuration errors, not panics.
        for owners in [0, MAX_CLUSTER_OWNERS + 1] {
            assert!(matches!(
                AmpcConfig::for_graph(100, 100, 0.5).with_cluster_owners(owners),
                Err(AmpcError::InvalidEndpointList { .. })
            ));
        }
    }

    #[test]
    fn endpoint_lists_parse_at_both_boundaries() {
        // The happy path, with whitespace tolerance and IPv6 brackets.
        assert_eq!(
            parse_endpoint_list(" 127.0.0.1:7471 ,[::1]:7472").unwrap(),
            vec!["127.0.0.1:7471".to_string(), "[::1]:7472".to_string()]
        );
        // Both edges of the owner-count range are accepted…
        assert_eq!(parse_endpoint_list("a:1").unwrap().len(), 1);
        let max = (0..MAX_CLUSTER_OWNERS)
            .map(|i| format!("host{i}:{}", 7000 + i))
            .collect::<Vec<_>>()
            .join(",");
        assert_eq!(parse_endpoint_list(&max).unwrap().len(), MAX_CLUSTER_OWNERS);
        // …and both edges of the port range.
        assert!(parse_endpoint_list("a:1,b:65535").is_ok());

        // Malformed lists are typed errors naming the offender, never panics.
        let cases = [
            ("", "at least one"),
            ("   ", "at least one"),
            ("a:1,b:2,c:3,d:4,e:5", "exceed"),
            ("hostonly", "missing the :port"),
            (":7471", "missing the host"),
            ("a:0", "not in 1..=65535"),
            ("a:65536", "not in 1..=65535"),
            ("a:port", "not in 1..=65535"),
            ("a:1,,b:2", "missing the :port"),
        ];
        for (input, expected) in cases {
            match parse_endpoint_list(input) {
                Err(AmpcError::InvalidEndpointList { reason, .. }) => {
                    assert!(reason.contains(expected), "{input:?}: {reason}")
                }
                other => panic!("{input:?} should be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn backend_kinds_round_trip_through_strings() {
        let kinds = [
            DdsBackendKind::Local,
            DdsBackendKind::Channel,
            DdsBackendKind::Remote,
            DdsBackendKind::Cluster,
        ];
        for kind in kinds {
            assert_eq!(kind.to_string().parse::<DdsBackendKind>(), Ok(kind));
        }
        // Parsing is forgiving about case and whitespace, plus one alias…
        assert_eq!(" Remote\n".parse(), Ok(DdsBackendKind::Remote));
        assert_eq!("TCP".parse(), Ok(DdsBackendKind::Remote));
        assert_eq!("LOCAL".parse(), Ok(DdsBackendKind::Local));
        // …but unknown names fail with the typed error naming the input.
        assert_eq!(
            "mpsc".parse::<DdsBackendKind>(),
            Err(AmpcError::UnknownBackend {
                requested: "mpsc".to_string()
            })
        );
    }

    #[test]
    #[should_panic(expected = "epsilon must lie in (0, 1)")]
    fn invalid_epsilon_rejected() {
        let _ = AmpcConfig::for_graph(10, 10, 1.5);
    }

    #[test]
    fn zero_threads_resolves_to_cpu_count() {
        let cfg = AmpcConfig::for_graph(10, 10, 0.5);
        assert!(cfg.effective_threads() >= 1);
    }
}

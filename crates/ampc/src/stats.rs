//! Execution statistics: the quantities the paper's theorems bound.
//!
//! Every theorem in the paper is a statement about (a) the number of rounds
//! and (b) the per-machine / total communication, where communication is the
//! number of DDS queries plus writes.  [`RoundStats`] captures those numbers
//! for one round and [`RunStats`] aggregates them over a run, so tests can
//! assert e.g. "the 2-Cycle algorithm used O(1/ε) rounds and O(n^ε) queries
//! per machine" and benches can print the same columns as Figure 1.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Statistics of a single AMPC round.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: usize,
    /// Number of machines that executed in this round.
    pub machines: usize,
    /// Total DDS queries (reads) issued by all machines.
    pub total_queries: u64,
    /// Maximum queries issued by a single machine.
    pub max_queries_per_machine: u64,
    /// Total DDS writes issued by all machines.
    pub total_writes: u64,
    /// Maximum writes issued by a single machine.
    pub max_writes_per_machine: u64,
    /// Number of machines that exceeded their query/write budget.
    pub budget_violations: u64,
    /// Number of machine executions that were restarted by fault injection.
    pub restarts: u64,
    /// Wall-clock time of the round.
    pub wall_time: Duration,
}

impl RoundStats {
    /// Total communication of the round (queries + writes), the model's
    /// per-round cost measure.
    pub fn communication(&self) -> u64 {
        self.total_queries + self.total_writes
    }

    /// Maximum per-machine communication in this round.
    pub fn max_machine_communication(&self) -> u64 {
        self.max_queries_per_machine + self.max_writes_per_machine
    }
}

/// Statistics of a whole AMPC execution.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Per-round statistics, in execution order.
    pub rounds: Vec<RoundStats>,
}

impl RunStats {
    /// Record a completed round.
    pub fn push(&mut self, round: RoundStats) {
        self.rounds.push(round);
    }

    /// Number of rounds executed — the paper's primary complexity measure.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total communication (queries + writes) over the whole run.
    pub fn total_communication(&self) -> u64 {
        self.rounds.iter().map(|r| r.communication()).sum()
    }

    /// Total queries over the whole run.
    pub fn total_queries(&self) -> u64 {
        self.rounds.iter().map(|r| r.total_queries).sum()
    }

    /// Total writes over the whole run.
    pub fn total_writes(&self) -> u64 {
        self.rounds.iter().map(|r| r.total_writes).sum()
    }

    /// The largest per-machine communication seen in any round — the
    /// quantity the `O(S)`-per-round bounds are about.
    pub fn max_machine_communication(&self) -> u64 {
        self.rounds
            .iter()
            .map(|r| r.max_machine_communication())
            .max()
            .unwrap_or(0)
    }

    /// Total budget violations across all rounds.
    pub fn budget_violations(&self) -> u64 {
        self.rounds.iter().map(|r| r.budget_violations).sum()
    }

    /// Total fault-injection restarts across all rounds.
    pub fn restarts(&self) -> u64 {
        self.rounds.iter().map(|r| r.restarts).sum()
    }

    /// Total wall-clock time spent inside rounds.
    pub fn total_wall_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.wall_time).sum()
    }

    /// Merge another run's statistics after this one (used by algorithms
    /// that chain several phases, e.g. 2-edge connectivity calling spanning
    /// forest and then connectivity).
    pub fn absorb(&mut self, other: RunStats) {
        let offset = self.rounds.len();
        for (i, mut round) in other.rounds.into_iter().enumerate() {
            round.round = offset + i;
            self.rounds.push(round);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(queries: u64, writes: u64, max_q: u64, max_w: u64) -> RoundStats {
        RoundStats {
            round: 0,
            machines: 4,
            total_queries: queries,
            max_queries_per_machine: max_q,
            total_writes: writes,
            max_writes_per_machine: max_w,
            budget_violations: 0,
            restarts: 0,
            wall_time: Duration::from_millis(1),
        }
    }

    #[test]
    fn round_communication_sums_queries_and_writes() {
        let r = round(10, 5, 4, 2);
        assert_eq!(r.communication(), 15);
        assert_eq!(r.max_machine_communication(), 6);
    }

    #[test]
    fn run_aggregates_rounds() {
        let mut run = RunStats::default();
        run.push(round(10, 5, 4, 2));
        run.push(round(20, 10, 9, 3));
        assert_eq!(run.num_rounds(), 2);
        assert_eq!(run.total_queries(), 30);
        assert_eq!(run.total_writes(), 15);
        assert_eq!(run.total_communication(), 45);
        assert_eq!(run.max_machine_communication(), 12);
        assert_eq!(run.budget_violations(), 0);
        assert_eq!(run.total_wall_time(), Duration::from_millis(2));
    }

    #[test]
    fn absorb_renumbers_rounds() {
        let mut a = RunStats::default();
        a.push(round(1, 1, 1, 1));
        let mut b = RunStats::default();
        b.push(round(2, 2, 2, 2));
        b.push(round(3, 3, 3, 3));
        a.absorb(b);
        assert_eq!(a.num_rounds(), 3);
        assert_eq!(a.rounds[1].round, 1);
        assert_eq!(a.rounds[2].round, 2);
        assert_eq!(a.total_queries(), 6);
    }

    #[test]
    fn empty_run_is_neutral() {
        let run = RunStats::default();
        assert_eq!(run.num_rounds(), 0);
        assert_eq!(run.total_communication(), 0);
        assert_eq!(run.max_machine_communication(), 0);
    }
}

//! Commit-path throughput and read-latency experiments.
//!
//! The epoch-pipeline refactor changed two hot paths, and this module
//! measures both so the win is recorded rather than asserted:
//!
//! * **Commit throughput** — the end-of-round commit used to replay every
//!   buffered write through a per-write shard-lock acquisition (kept
//!   measurable here as the `serial` series); the store now groups a batch
//!   by shard and locks each shard once (`batched`), and the runtime
//!   commits distinct shards in parallel (`parallel`).  The partition pass
//!   itself is also timed in isolation, single-threaded vs the per-worker
//!   bucket pass (`partition_serial` / `partition_parallel`), since it was
//!   the last single-threaded stage of the commit pipeline.
//! * **Read latency** — adaptive reads used to chase a heap pointer into a
//!   `Vec<Value>` for every key; the compact snapshot layout keeps
//!   singleton values inline.  The pre-refactor layout survives as
//!   [`ampc_dds::legacy::LegacyStore`] and is timed side by side.
//!
//! The `summary` binary serialises both series into `BENCH_commit.json` so
//! future PRs have a trajectory to compare against.

use ampc_dds::legacy::LegacyStore;
use ampc_dds::{Key, KeyTag, ShardedStore, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One commit-throughput measurement at a fixed shard count.
#[derive(Clone, Debug)]
pub struct CommitThroughputPoint {
    /// Number of shards ("DDS machines").
    pub shards: usize,
    /// Key-value pairs committed.
    pub pairs: usize,
    /// Worker threads used by the parallel commit.
    pub threads: usize,
    /// Seed commit path: one shard-lock acquisition per write, nanoseconds.
    pub serial_ns: u64,
    /// Shard-grouped batch commit (one lock per shard), nanoseconds.
    pub batched_ns: u64,
    /// Full shard-parallel end-of-round path (parallel partition pass +
    /// chunked shard-parallel commit), nanoseconds.
    pub parallel_ns: u64,
    /// Single-threaded partition pass alone, nanoseconds.
    pub partition_serial_ns: u64,
    /// Parallel partition pass alone (per-worker buckets, no merge),
    /// nanoseconds.
    pub partition_parallel_ns: u64,
}

impl CommitThroughputPoint {
    /// Parallel-commit speedup over the seed per-write path.
    pub fn speedup_parallel_over_serial(&self) -> f64 {
        self.serial_ns as f64 / self.parallel_ns.max(1) as f64
    }

    /// Parallel-commit throughput in million writes per second.
    pub fn parallel_mwrites_per_sec(&self) -> f64 {
        self.pairs as f64 * 1e3 / self.parallel_ns.max(1) as f64
    }

    /// Speedup of the parallel partition pass over the single-threaded pass.
    pub fn partition_speedup(&self) -> f64 {
        self.partition_serial_ns as f64 / self.partition_parallel_ns.max(1) as f64
    }
}

/// One read-latency measurement of frozen-snapshot point lookups.
#[derive(Clone, Debug)]
pub struct ReadLatencyPoint {
    /// Distinct keys resident in the store.
    pub keys: usize,
    /// Point lookups timed.
    pub reads: usize,
    /// Mean latency of a compact-layout snapshot read, nanoseconds.
    pub compact_ns_per_read: f64,
    /// Mean latency of a legacy-layout (`Vec<Value>` per key) read,
    /// nanoseconds.
    pub legacy_ns_per_read: f64,
    /// Checksum of the values read (anti-dead-code; equal across layouts).
    pub checksum: u64,
}

pub(crate) fn workload(pairs: usize, seed: u64) -> Vec<(Key, Value)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..pairs)
        .map(|i| {
            // ~99% singleton keys with a small multi-value hot set, matching
            // the key profile of the algorithm workloads.
            let key = if i % 100 == 99 {
                i as u64 % 97
            } else {
                i as u64
            };
            (Key::of(KeyTag::Scalar, key), Value::scalar(rng.gen()))
        })
        .collect()
}

/// Machine batches the parallel partition pass distributes over workers —
/// the shape the runtime produces (one write buffer per virtual machine).
const WORKLOAD_MACHINES: usize = 64;

/// The workload split into per-machine batches, preserving write order.
fn workload_batches(pairs: usize, seed: u64) -> Vec<Vec<(Key, Value)>> {
    let writes = workload(pairs, seed);
    let per_machine = pairs.div_ceil(WORKLOAD_MACHINES).max(1);
    writes
        .chunks(per_machine)
        .map(|chunk| chunk.to_vec())
        .collect()
}

/// Measure the commit paths for each shard count in `shard_counts`.
///
/// `threads` caps the parallel-commit workers (0 = one per available CPU).
pub fn commit_throughput(
    pairs: usize,
    shard_counts: &[usize],
    threads: usize,
    seed: u64,
) -> Vec<CommitThroughputPoint> {
    let threads = if threads == 0 {
        ampc_dds::default_parallelism()
    } else {
        threads
    };
    let writes = workload(pairs, seed);
    let batches = workload_batches(pairs, seed);
    shard_counts
        .iter()
        .map(|&shards| {
            // Seed path: every write takes and releases the shard lock.
            let store = ShardedStore::new(shards);
            let started = Instant::now();
            for &(key, value) in &writes {
                store.write(key, value);
            }
            let serial_ns = started.elapsed().as_nanos() as u64;
            drop(store);

            // Batched path: one lock acquisition per shard per batch.
            let store = ShardedStore::new(shards);
            let started = Instant::now();
            store.write_batch(writes.iter().copied());
            let batched_ns = started.elapsed().as_nanos() as u64;
            drop(store);

            // Partition pass in isolation: single-threaded vs per-worker
            // buckets (the ROADMAP perf item).  The input clones happen
            // before the timers start — the serial/batched series pay no
            // clone, so neither may the timed sections here.
            let store = ShardedStore::new(shards);
            let input = batches.clone();
            let started = Instant::now();
            let per_shard = store.partition_writes(input);
            let partition_serial_ns = started.elapsed().as_nanos() as u64;
            drop(per_shard);
            let input = batches.clone();
            let started = Instant::now();
            let chunks = store.partition_writes_parallel(input, threads);
            let partition_parallel_ns = started.elapsed().as_nanos() as u64;
            drop(chunks);
            drop(store);

            // Full end-of-round path: parallel partition + chunked commit.
            let store = ShardedStore::new(shards);
            let input = batches.clone();
            let started = Instant::now();
            let chunks = store.partition_writes_parallel(input, threads);
            store.commit_chunked(chunks, threads);
            let parallel_ns = started.elapsed().as_nanos() as u64;
            drop(store);

            CommitThroughputPoint {
                shards,
                pairs,
                threads,
                serial_ns,
                batched_ns,
                parallel_ns,
                partition_serial_ns,
                partition_parallel_ns,
            }
        })
        .collect()
}

/// Time `reads` random point lookups against the compact snapshot layout
/// and against the pre-refactor legacy layout holding the same data.
pub fn read_latency(keys: usize, reads: usize, shards: usize, seed: u64) -> ReadLatencyPoint {
    let pairs = workload(keys, seed);

    let store = ShardedStore::new(shards);
    store.write_batch(pairs.iter().copied());
    let snapshot = store.freeze();

    let mut legacy = LegacyStore::new(shards);
    for &(key, value) in &pairs {
        legacy.write(key, value);
    }

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let probes: Vec<Key> = (0..reads)
        .map(|_| Key::of(KeyTag::Scalar, rng.gen_range(0..keys as u64)))
        .collect();

    let started = Instant::now();
    let mut compact_sum = 0u64;
    for key in &probes {
        if let Some(value) = snapshot.get(key) {
            compact_sum = compact_sum.wrapping_add(value.x);
        }
    }
    let compact_ns = started.elapsed().as_nanos() as f64 / reads.max(1) as f64;

    let started = Instant::now();
    let mut legacy_sum = 0u64;
    for key in &probes {
        if let Some(value) = legacy.get(key) {
            legacy_sum = legacy_sum.wrapping_add(value.x);
        }
    }
    let legacy_ns = started.elapsed().as_nanos() as f64 / reads.max(1) as f64;

    assert_eq!(compact_sum, legacy_sum, "layouts must agree on every read");
    ReadLatencyPoint {
        keys,
        reads,
        compact_ns_per_read: compact_ns,
        legacy_ns_per_read: legacy_ns,
        checksum: compact_sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_paths_store_identical_contents() {
        let writes = workload(5_000, 3);
        let serial = ShardedStore::new(8);
        for &(key, value) in &writes {
            serial.write(key, value);
        }
        let parallel = ShardedStore::new(8);
        let per_shard = parallel.partition_writes(std::iter::once(writes.iter().copied()));
        parallel.commit_partitioned(per_shard, 4);
        assert_eq!(serial.total_writes(), parallel.total_writes());
        assert_eq!(serial.len(), parallel.len());
        for &(key, _) in &writes {
            assert_eq!(serial.multiplicity(&key), parallel.multiplicity(&key));
            assert_eq!(serial.get(&key), parallel.get(&key));
        }
    }

    #[test]
    fn throughput_experiment_reports_every_shard_count() {
        let points = commit_throughput(20_000, &[1, 8], 4, 7);
        assert_eq!(points.len(), 2);
        for point in &points {
            assert_eq!(point.pairs, 20_000);
            assert!(point.serial_ns > 0 && point.batched_ns > 0 && point.parallel_ns > 0);
            assert!(point.partition_serial_ns > 0 && point.partition_parallel_ns > 0);
            assert!(point.speedup_parallel_over_serial() > 0.0);
            assert!(point.partition_speedup() > 0.0);
        }
    }

    #[test]
    fn chunked_commit_path_stores_identical_contents() {
        // The bench's "parallel" series is the real end-of-round path; make
        // sure what it measures is semantically the serial commit.
        let batches = workload_batches(10_000, 11);
        let serial = ShardedStore::new(8);
        for batch in &batches {
            for &(key, value) in batch {
                serial.write(key, value);
            }
        }
        let parallel = ShardedStore::new(8);
        let chunks = parallel.partition_writes_parallel(batches.clone(), 4);
        parallel.commit_chunked(chunks, 4);
        assert_eq!(serial.total_writes(), parallel.total_writes());
        assert_eq!(serial.len(), parallel.len());
        for batch in &batches {
            for &(key, _) in batch {
                assert_eq!(serial.multiplicity(&key), parallel.multiplicity(&key));
                for idx in 0..serial.multiplicity(&key) {
                    assert_eq!(
                        serial.get_indexed(&key, idx),
                        parallel.get_indexed(&key, idx)
                    );
                }
            }
        }
    }

    #[test]
    fn read_latency_layouts_agree() {
        let point = read_latency(10_000, 50_000, 16, 9);
        assert!(point.compact_ns_per_read > 0.0);
        assert!(point.legacy_ns_per_read > 0.0);
    }
}

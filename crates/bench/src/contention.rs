//! The Lemma 2.1 contention experiment.
//!
//! Lemma 2.1 states that throwing `T` weighted balls (key-value pairs, with
//! query multiplicities as weights) into `P` bins (DDS machines) uniformly
//! at random puts only `O(S) = O(T/P)` weight in every bin w.h.p., provided
//! `P = O(S^{1-Ω(1)})`.  [`contention_experiment`] measures the max-bin load
//! across a sweep of machine counts so the summary can report the measured
//! imbalance factor next to the analytical `O(1)` expectation.

use ampc_dds::contention::{lemma21_weights, simulate_balls_into_bins, BallsInBinsReport};

/// Run the weighted balls-into-bins experiment of Lemma 2.1 for several
/// machine counts `P`, with `T = pairs` key-value pairs.
pub fn contention_experiment(
    pairs: usize,
    machine_counts: &[usize],
    seed: u64,
) -> Vec<BallsInBinsReport> {
    machine_counts
        .iter()
        .map(|&p| {
            let weights = lemma21_weights(pairs, p as u64, seed);
            simulate_balls_into_bins(&weights, p, seed.wrapping_add(p as u64))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_stays_constant_while_p_obeys_the_lemma() {
        // S = T/P ranges from 4096 down to 256; P ≤ S^{1-δ} throughout.
        let reports = contention_experiment(65_536, &[16, 64, 256], 7);
        for report in &reports {
            assert!(
                report.imbalance < 2.0,
                "imbalance {} too high for P={}",
                report.imbalance,
                report.bins
            );
        }
    }

    #[test]
    fn total_weight_is_preserved() {
        for report in contention_experiment(10_000, &[8, 32], 3) {
            assert_eq!(report.total_weight, 10_000);
            assert_eq!(report.balls, 10_000);
        }
    }
}

//! Cluster commit scaling: does sharding the store across owner processes
//! keep the commit path fast?
//!
//! The cluster backend routes each round's writes to the owner holding the
//! destination shard and runs the two-phase advance barrier across all
//! owners.  This experiment commits the same workload over the same total
//! shard count at `owners = 1` and `owners = 2` and reports commit-request
//! throughput, so a regression in the routing/barrier overhead shows up as
//! a trajectory change in `BENCH_commit.json` rather than going unnoticed.

use crate::commit::workload;
use ampc_dds::{ClusterBackend, DdsBackend, Key, Value};
use std::time::Instant;

/// One cluster commit-throughput measurement at a fixed owner count.
#[derive(Clone, Debug)]
pub struct ClusterCommitPoint {
    /// Standalone owners the shards are split across.
    pub owners: usize,
    /// Total shards (identical across owner counts).
    pub shards: usize,
    /// Key-value pairs committed per round.
    pub pairs_per_round: usize,
    /// Rounds committed and advanced.
    pub rounds: usize,
    /// Wall time of the `commit_round` calls alone, nanoseconds.
    pub commit_ns: u64,
    /// Wall time of the full rounds (commit + two-phase advance),
    /// nanoseconds.
    pub round_ns: u64,
}

impl ClusterCommitPoint {
    /// Wire `Commit` requests served per second (one per owner per round).
    pub fn commit_reqs_per_sec(&self) -> f64 {
        (self.rounds * self.owners) as f64 * 1e9 / self.commit_ns.max(1) as f64
    }

    /// Committed pairs per second over the commit path alone, in millions.
    pub fn commit_mpairs_per_sec(&self) -> f64 {
        (self.rounds * self.pairs_per_round) as f64 * 1e3 / self.commit_ns.max(1) as f64
    }

    /// Full rounds (commit + barrier advance) per second.
    pub fn rounds_per_sec(&self) -> f64 {
        self.rounds as f64 * 1e9 / self.round_ns.max(1) as f64
    }
}

fn measure<const OWNERS: usize>(
    pairs_per_round: usize,
    shards: usize,
    rounds: usize,
    seed: u64,
) -> ClusterCommitPoint {
    let threads = 2;
    let mut backend = ClusterBackend::<OWNERS>::with_shards(shards, threads);
    // The runtime hands the backend one write buffer per virtual machine;
    // four batches keeps the partition pass honest without dominating.
    let batches: Vec<Vec<(Key, Value)>> = workload(pairs_per_round, seed)
        .chunks(pairs_per_round.div_ceil(4).max(1))
        .map(<[(Key, Value)]>::to_vec)
        .collect();

    let mut commit_ns = 0u64;
    let started_rounds = Instant::now();
    for _ in 0..rounds {
        let started = Instant::now();
        backend.commit_round(batches.clone(), threads);
        commit_ns += started.elapsed().as_nanos() as u64;
        let view = backend.advance(threads);
        drop(view);
    }
    let round_ns = started_rounds.elapsed().as_nanos() as u64;
    assert_eq!(backend.completed_epochs(), rounds);

    ClusterCommitPoint {
        owners: OWNERS,
        shards,
        pairs_per_round,
        rounds,
        commit_ns,
        round_ns,
    }
}

/// Commit `rounds` rounds of `pairs_per_round` pairs over `shards` total
/// shards at owner counts 1 and 2 — same workload, same shard count, so the
/// two points differ only in how many processes the store is split across.
pub fn cluster_commit_scaling(
    pairs_per_round: usize,
    shards: usize,
    rounds: usize,
    seed: u64,
) -> Vec<ClusterCommitPoint> {
    vec![
        measure::<1>(pairs_per_round, shards, rounds, seed),
        measure::<2>(pairs_per_round, shards, rounds, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_series_reports_both_owner_counts() {
        let points = cluster_commit_scaling(2_000, 8, 3, 17);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].owners, 1);
        assert_eq!(points[1].owners, 2);
        for point in &points {
            assert_eq!(point.shards, 8);
            assert_eq!(point.rounds, 3);
            assert!(point.commit_ns > 0 && point.round_ns >= point.commit_ns);
            assert!(point.commit_reqs_per_sec() > 0.0);
            assert!(point.rounds_per_sec() > 0.0);
        }
    }
}

//! Many-client serve-path throughput: pipelined vs one-in-flight.
//!
//! The standalone owner process ([`ampc_dds::serve`]) is the deployment
//! shape the paper assumes — a DHT-like store serving every machine's
//! write-side traffic.  Since the transport split, that path is
//! *pipelined*: a client may keep a window of requests in flight per
//! socket, and the server overlaps decoding request `N + 1` with applying
//! `N` and flushing the reply to `N - 1`.  This experiment quantifies what
//! the overlap buys.
//!
//! `K` leased clients (each its own session, so the server multiplexes `K`
//! concurrent connections) drive a sustained commit/advance/read load:
//! commits stream out back-to-back up to the mode's window, every
//! [`ADVANCE_EVERY`] commits the client drains its pipeline and freezes the
//! epoch, and a final `TotalWrites` read audits that every commit was
//! applied exactly once.  Two modes run the identical workload:
//!
//! * **one_in_flight** — window 1, the classic lock-step RPC loop (send,
//!   wait, repeat); every request pays a full round-trip of latency.
//! * **pipelined** — window [`PIPELINE_WINDOW`]; round-trips overlap and
//!   the socket, codec, and dispatch stages all stay busy.
//!
//! Reported per mode: sustained requests/sec across all clients, plus p50
//! and p99 commit latency (send → matching FIFO ack).  Pipelining trades
//! per-request latency (acks queue behind the window) for throughput — the
//! ROADMAP target, gated by the CI sentinel on `BENCH_commit.json`, is
//! ≥ 2× the one-in-flight requests/sec at `K = 8`.

use ampc_dds::proto::{Reply, Request};
use ampc_dds::serve;
use ampc_dds::transport::ClientReply;
use ampc_dds::{Key, KeyTag, TcpOptions, TcpTransport, Transport, Value};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Commits per epoch: the pipeline is drained and the epoch frozen after
/// this many, so the workload exercises the advance path, not just commits.
const ADVANCE_EVERY: usize = 64;

/// Outstanding commits per socket in the pipelined mode.  Half the
/// client-side cap (128), comfortably inside the owner's replay-dedup
/// window, and deep enough to hide a full round-trip on loopback.
const PIPELINE_WINDOW: usize = 32;

/// Key-value pairs per commit request — small frames, so the measured cost
/// is the per-request path (framing, syscalls, dispatch), not bulk copy.
const PAIRS_PER_COMMIT: u64 = 4;

/// One (mode, client count) throughput measurement against a standalone
/// [`ampc_dds::DdsServer`].
#[derive(Clone, Debug)]
pub struct ServeThroughputPoint {
    /// `"one_in_flight"` or `"pipelined"`.
    pub mode: &'static str,
    /// Concurrent leased clients.
    pub clients: usize,
    /// Max outstanding requests per socket in this mode.
    pub window: usize,
    /// Total commit requests acknowledged across all clients.
    pub requests: u64,
    /// Sustained throughput: total acked commits over the slowest client's
    /// wall clock (all clients start together behind a barrier).
    pub requests_per_sec: f64,
    /// Median commit latency (send → FIFO ack), nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile commit latency, nanoseconds.
    pub p99_ns: u64,
    /// Writes the server audited per session at the end (anti-dead-code;
    /// must equal commits × pairs for every client).
    pub total_writes: u64,
}

fn commit(seq: u64) -> Request {
    Request::Commit {
        epoch: 0, // patched per epoch below
        seq,
        batches: vec![(
            0,
            (0..PAIRS_PER_COMMIT)
                .map(|i| {
                    (
                        Key::of(KeyTag::Scalar, seq * PAIRS_PER_COMMIT + i),
                        Value::scalar(seq ^ i),
                    )
                })
                .collect(),
        )],
    }
}

/// One client's run: stream `commits` commit requests with at most
/// `window` outstanding, freezing the epoch every [`ADVANCE_EVERY`].
/// Returns (latencies, audited total writes, wall clock).
fn run_client(
    addr: SocketAddr,
    commits: usize,
    window: usize,
    barrier: &Barrier,
) -> (Vec<u64>, u64, Duration) {
    let options = TcpOptions::fresh().with_topology(1, 1);
    let mut client = TcpTransport::connect_to(addr, 0, options).expect("leasing a bench session");
    // One warm round-trip absorbs the lease grant and connection setup so
    // the timed region measures the steady-state serve path.
    client.send(Request::TotalWrites).expect("warm-up send");
    client.recv().expect("warm-up reply");

    barrier.wait();
    let started = Instant::now();
    let mut latencies = Vec::with_capacity(commits);
    let mut in_flight: VecDeque<Instant> = VecDeque::new();
    let mut epoch = 0usize;
    let mut sent = 0usize;
    let mut sent_this_epoch = 0usize;
    let mut acked = 0usize;
    while acked < commits {
        if sent < commits && in_flight.len() < window && sent_this_epoch < ADVANCE_EVERY {
            let mut request = commit(sent as u64);
            if let Request::Commit { epoch: e, .. } = &mut request {
                *e = epoch;
            }
            client.send(request).expect("pipelined commit");
            in_flight.push_back(Instant::now());
            sent += 1;
            sent_this_epoch += 1;
            continue;
        }
        match client.recv().expect("commit ack") {
            ClientReply::Wire(Reply::Committed { accepted, .. }) => {
                assert_eq!(accepted, PAIRS_PER_COMMIT, "every pair must land");
                let sent_at = in_flight.pop_front().expect("acks pair FIFO with sends");
                latencies.push(sent_at.elapsed().as_nanos() as u64);
                acked += 1;
            }
            _ => panic!("a commit must be acknowledged with Committed, in FIFO order"),
        }
        // Epoch boundary: the whole pipeline must be drained first, since
        // in-flight commits still target the epoch about to freeze.
        if sent_this_epoch == ADVANCE_EVERY && in_flight.is_empty() {
            client.send(Request::Advance { epoch }).expect("advance");
            match client.recv().expect("advance reply") {
                ClientReply::Wire(Reply::Epoch(_)) | ClientReply::SharedEpoch(_) => {}
                _ => panic!("an advance must publish the frozen epoch"),
            }
            epoch += 1;
            sent_this_epoch = 0;
        }
    }
    let wall = started.elapsed();

    client.send(Request::TotalWrites).expect("audit send");
    let writes = match client.recv().expect("audit reply") {
        ClientReply::Wire(Reply::TotalWrites(writes)) => writes,
        _ => panic!("the audit read must be answered with TotalWrites"),
    };
    (latencies, writes, wall)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn measure_mode(
    mode: &'static str,
    clients: usize,
    commits_per_client: usize,
    window: usize,
) -> ServeThroughputPoint {
    let server = serve(("127.0.0.1", 0)).expect("binding the bench owner process");
    let addr = server.local_addr();
    let barrier = Barrier::new(clients);
    let runs: Vec<(Vec<u64>, u64, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = &barrier;
                scope.spawn(move || run_client(addr, commits_per_client, window, barrier))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("bench client"))
            .collect()
    });
    server.shutdown();

    let expected_writes = commits_per_client as u64 * PAIRS_PER_COMMIT;
    let mut latencies = Vec::with_capacity(clients * commits_per_client);
    let mut slowest = Duration::ZERO;
    for (samples, writes, wall) in &runs {
        assert_eq!(
            *writes, expected_writes,
            "every commit must be applied exactly once ({mode})"
        );
        latencies.extend_from_slice(samples);
        slowest = slowest.max(*wall);
    }
    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    ServeThroughputPoint {
        mode,
        clients,
        window,
        requests,
        requests_per_sec: requests as f64 / slowest.as_secs_f64().max(1e-9),
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
        total_writes: expected_writes,
    }
}

/// Run the full experiment: the identical commit/advance/read workload in
/// lock-step (window 1) and pipelined (window [`PIPELINE_WINDOW`]) modes,
/// `clients` concurrent leased sessions each.
pub fn serve_throughput(clients: usize, commits_per_client: usize) -> Vec<ServeThroughputPoint> {
    vec![
        measure_mode("one_in_flight", clients, commits_per_client, 1),
        measure_mode("pipelined", clients, commits_per_client, PIPELINE_WINDOW),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_complete_the_identical_workload() {
        let points = serve_throughput(2, 96);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].mode, "one_in_flight");
        assert_eq!(points[0].window, 1);
        assert_eq!(points[1].mode, "pipelined");
        assert_eq!(points[1].window, PIPELINE_WINDOW);
        for point in &points {
            assert_eq!(point.clients, 2);
            assert_eq!(point.requests, 2 * 96);
            assert_eq!(point.total_writes, 96 * PAIRS_PER_COMMIT);
            assert!(point.requests_per_sec > 0.0, "{point:?}");
            assert!(point.p50_ns > 0, "{point:?}");
            assert!(point.p99_ns >= point.p50_ns, "{point:?}");
        }
    }

    #[test]
    fn percentiles_index_from_the_sorted_tail() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}

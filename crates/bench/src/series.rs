//! Scaling series — the "figures" of the reproduction.
//!
//! The paper is theory-first, so beyond the Figure 1 table its claims are
//! asymptotic statements.  Each series here turns one such statement into a
//! measured curve:
//!
//! * [`scaling_series`] — rounds vs `n` for every problem (AMPC flat /
//!   doubly-logarithmic, MPC logarithmic);
//! * [`density_series`] — connectivity rounds vs `m/n` (the
//!   `log log_{m/n} n` dependence of Theorems 3–4);
//! * [`diameter_series`] — connectivity rounds vs diameter `D` (the `log D`
//!   factor the MPC baseline pays and AMPC does not);
//! * [`epsilon_series`] — rounds vs the space exponent ε (the `O(1/ε)`
//!   trade-off, the ablation study of DESIGN.md).

use crate::figure1::EPSILON;
use ampc_algorithms as ampc;
use ampc_graph::{generators, sequential};
use ampc_mpc as mpc;

/// One measured point of a series.
#[derive(Clone, Debug)]
pub struct SeriesPoint {
    /// Value of the swept parameter (`n`, `m/n`, `D` or ε·100).
    pub x: f64,
    /// Measured AMPC rounds.
    pub ampc_rounds: usize,
    /// Measured MPC baseline rounds.
    pub mpc_rounds: usize,
    /// Maximum per-machine AMPC communication in any round.
    pub ampc_max_machine_communication: u64,
}

/// Rounds vs `n` for a given problem (`"two_cycle"`, `"connectivity"`,
/// `"mis"`, `"msf"`, `"forest"`, `"list_ranking"`).
pub fn scaling_series(problem: &str, sizes: &[usize], seed: u64) -> Vec<SeriesPoint> {
    sizes
        .iter()
        .map(|&n| {
            let (ampc_rounds, mpc_rounds, max_comm) = match problem {
                "two_cycle" => {
                    let g = generators::two_cycle_instance(n, false, seed);
                    let a = ampc::two_cycle(&g, EPSILON, seed);
                    let (_, m) = mpc::two_cycle_mpc(&g, 128);
                    (
                        a.rounds(),
                        m.num_rounds(),
                        a.stats.max_machine_communication(),
                    )
                }
                "connectivity" => {
                    let g = generators::planted_components(n, 8, (3 * n / 8).max(1), seed);
                    let a = ampc::connectivity(&g, EPSILON, seed);
                    let (_, m) = mpc::pointer_doubling_connectivity(&g, 128);
                    (
                        a.rounds(),
                        m.num_rounds(),
                        a.stats.max_machine_communication(),
                    )
                }
                "mis" => {
                    let g = generators::erdos_renyi_gnm(n, 4 * n, seed);
                    let a = ampc::maximal_independent_set(&g, EPSILON, seed);
                    let (_, m) = mpc::luby_mis(&g, 128, seed);
                    (
                        a.rounds(),
                        m.num_rounds(),
                        a.stats.max_machine_communication(),
                    )
                }
                "msf" => {
                    let base = generators::connected_gnm(n, 3 * n, seed);
                    let g = generators::with_random_weights(&base, seed + 1);
                    let a = ampc::minimum_spanning_forest(&g, EPSILON, seed);
                    let (_, _, m) = mpc::boruvka_msf(&g, 128);
                    (
                        a.rounds(),
                        m.num_rounds(),
                        a.stats.max_machine_communication(),
                    )
                }
                "forest" => {
                    let g = generators::random_forest(n, 16, seed);
                    let a = ampc::forest_connectivity(&g, EPSILON, seed);
                    let (_, m) = mpc::pointer_doubling_connectivity(&g, 128);
                    (
                        a.rounds(),
                        m.num_rounds(),
                        a.stats.max_machine_communication(),
                    )
                }
                "list_ranking" => {
                    let successor: Vec<u32> = (0..n as u32)
                        .map(|v| if (v as usize) + 1 < n { v + 1 } else { v })
                        .collect();
                    let a = ampc::list_ranking(&successor, EPSILON, seed);
                    let (_, m) = mpc::wyllie_list_ranking(&successor, 128);
                    (
                        a.rounds(),
                        m.num_rounds(),
                        a.stats.max_machine_communication(),
                    )
                }
                other => panic!("unknown problem {other}"),
            };
            SeriesPoint {
                x: n as f64,
                ampc_rounds,
                mpc_rounds,
                ampc_max_machine_communication: max_comm,
            }
        })
        .collect()
}

/// Connectivity rounds vs density `m/n` at fixed `n`.
pub fn density_series(n: usize, densities: &[usize], seed: u64) -> Vec<SeriesPoint> {
    densities
        .iter()
        .map(|&density| {
            let g = generators::connected_gnm(n, density * n, seed);
            let a = ampc::connectivity(&g, EPSILON, seed);
            let (labels, m) = mpc::pointer_doubling_connectivity(&g, 128);
            assert_eq!(labels, sequential::connected_components(&g));
            SeriesPoint {
                x: density as f64,
                ampc_rounds: a.rounds(),
                mpc_rounds: m.num_rounds(),
                ampc_max_machine_communication: a.stats.max_machine_communication(),
            }
        })
        .collect()
}

/// Connectivity rounds vs diameter (path-of-cliques with a growing number of
/// cliques); the MPC baseline here is label propagation, whose round count
/// is Θ(D).
pub fn diameter_series(clique_size: usize, clique_counts: &[usize], seed: u64) -> Vec<SeriesPoint> {
    clique_counts
        .iter()
        .map(|&count| {
            let g = generators::path_of_cliques(clique_size, count);
            let diameter = sequential::diameter_estimate(&g);
            let a = ampc::connectivity(&g, EPSILON, seed);
            let (labels, m) = mpc::label_propagation_connectivity(&g, EPSILON);
            assert_eq!(labels, sequential::connected_components(&g));
            SeriesPoint {
                x: diameter as f64,
                ampc_rounds: a.rounds(),
                mpc_rounds: m.num_rounds(),
                ampc_max_machine_communication: a.stats.max_machine_communication(),
            }
        })
        .collect()
}

/// 2-Cycle rounds vs the space exponent ε (the `O(1/ε)` ablation).
pub fn epsilon_series(n: usize, epsilons: &[f64], seed: u64) -> Vec<SeriesPoint> {
    epsilons
        .iter()
        .map(|&eps| {
            let g = generators::two_cycle_instance(n, false, seed);
            let a = ampc::two_cycle(&g, eps, seed);
            SeriesPoint {
                x: eps,
                ampc_rounds: a.rounds(),
                mpc_rounds: 0,
                ampc_max_machine_communication: a.stats.max_machine_communication(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cycle_scaling_shows_the_gap() {
        let series = scaling_series("two_cycle", &[512, 4_096, 16_384], 1);
        assert_eq!(series.len(), 3);
        // AMPC stays flat (within a couple of iterations) while MPC grows.
        assert!(series[2].ampc_rounds <= series[0].ampc_rounds + 6);
        assert!(series[2].mpc_rounds > series[0].mpc_rounds);
    }

    #[test]
    fn diameter_series_shows_mpc_paying_for_d() {
        let series = diameter_series(8, &[8, 64], 2);
        assert!(series[1].mpc_rounds > 4 * series[0].ampc_rounds);
        assert!(series[1].mpc_rounds > series[0].mpc_rounds);
        assert!(series[1].ampc_rounds <= series[0].ampc_rounds + 6);
    }

    #[test]
    fn epsilon_series_is_monotone_in_rounds() {
        let series = epsilon_series(4_096, &[0.25, 0.5, 0.75], 3);
        assert!(series[0].ampc_rounds >= series[2].ampc_rounds);
    }

    #[test]
    #[should_panic(expected = "unknown problem")]
    fn unknown_problem_is_rejected() {
        let _ = scaling_series("nope", &[100], 0);
    }
}

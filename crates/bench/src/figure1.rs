//! Figure 1 reproduction: measured AMPC vs MPC round counts per problem.
//!
//! Each function generates a workload sized by `n`, runs the paper's AMPC
//! algorithm and the corresponding MPC baseline on the *same* instance,
//! verifies both against the sequential reference, and reports the measured
//! rounds and communication.  The absolute numbers are simulation-specific;
//! the claim being reproduced is the *shape*: which model needs more rounds
//! and how that gap grows with `n`.

use ampc_algorithms as ampc;
use ampc_graph::{generators, sequential};
use ampc_mpc as mpc;

/// Space exponent used throughout the headline experiments.
pub const EPSILON: f64 = 0.5;

/// One row of the reproduced Figure 1.
#[derive(Clone, Debug)]
pub struct Figure1Row {
    /// Problem name as it appears in the paper's table.
    pub problem: &'static str,
    /// Paper's AMPC round bound (for the report).
    pub ampc_bound: &'static str,
    /// Paper's MPC round bound (for the report).
    pub mpc_bound: &'static str,
    /// Number of vertices of the measured instance.
    pub n: usize,
    /// Number of edges of the measured instance.
    pub m: usize,
    /// Measured AMPC rounds.
    pub ampc_rounds: usize,
    /// Measured MPC baseline rounds.
    pub mpc_rounds: usize,
    /// Total AMPC communication (queries + writes).
    pub ampc_communication: u64,
    /// Total MPC messages.
    pub mpc_messages: u64,
    /// Whether both outputs matched the sequential reference.
    pub verified: bool,
}

/// Row "2-Cycle": AMPC `Shrink` vs MPC pointer doubling.
pub fn row_two_cycle(n: usize, seed: u64) -> Figure1Row {
    let graph = generators::two_cycle_instance(n, seed.is_multiple_of(2), seed);
    let expected_two = seed.is_multiple_of(2);
    let a = ampc::two_cycle(&graph, EPSILON, seed);
    let (m_answer, m_stats) = mpc::two_cycle_mpc(&graph, 128);
    let verified = matches!(a.output, ampc::TwoCycleAnswer::TwoCycles) == expected_two
        && matches!(m_answer, mpc::TwoCycleAnswer::TwoCycles) == expected_two;
    Figure1Row {
        problem: "2-Cycle",
        ampc_bound: "O(1)",
        mpc_bound: "O(log n)",
        n: graph.num_vertices(),
        m: graph.num_edges(),
        ampc_rounds: a.rounds(),
        mpc_rounds: m_stats.num_rounds(),
        ampc_communication: a.stats.total_communication(),
        mpc_messages: m_stats.total_messages(),
        verified,
    }
}

/// Row "Maximal independent set": AMPC LFMIS vs Luby's algorithm.
pub fn row_mis(n: usize, seed: u64) -> Figure1Row {
    let graph = generators::erdos_renyi_gnm(n, 4 * n, seed);
    let a = ampc::maximal_independent_set(&graph, EPSILON, seed);
    let (l, l_stats) = mpc::luby_mis(&graph, 128, seed);
    let verified = sequential::is_maximal_independent_set(&graph, &a.output)
        && sequential::is_maximal_independent_set(&graph, &l);
    Figure1Row {
        problem: "Maximal independent set",
        ampc_bound: "O(1)",
        mpc_bound: "Õ(√log n)",
        n: graph.num_vertices(),
        m: graph.num_edges(),
        ampc_rounds: a.rounds(),
        mpc_rounds: l_stats.num_rounds(),
        ampc_communication: a.stats.total_communication(),
        mpc_messages: l_stats.total_messages(),
        verified,
    }
}

/// Row "Connectivity": AMPC Algorithm 7 vs Shiloach–Vishkin-style hooking.
pub fn row_connectivity(n: usize, seed: u64) -> Figure1Row {
    let graph = generators::planted_components(n, 8, (3 * n / 8).max(1), seed);
    let reference = sequential::connected_components(&graph);
    let a = ampc::connectivity(&graph, EPSILON, seed);
    let (labels, m_stats) = mpc::pointer_doubling_connectivity(&graph, 128);
    let verified = a.output == reference && labels == reference;
    Figure1Row {
        problem: "Connectivity",
        ampc_bound: "O(log log_{m/n} n)",
        mpc_bound: "O(log D · log log_{m/n} n)",
        n: graph.num_vertices(),
        m: graph.num_edges(),
        ampc_rounds: a.rounds(),
        mpc_rounds: m_stats.num_rounds(),
        ampc_communication: a.stats.total_communication(),
        mpc_messages: m_stats.total_messages(),
        verified,
    }
}

/// Row "Minimum spanning tree": AMPC Algorithm 9 vs Borůvka.
pub fn row_msf(n: usize, seed: u64) -> Figure1Row {
    let base = generators::connected_gnm(n, 3 * n, seed);
    let graph = generators::with_random_weights(&base, seed + 1);
    let (_, kruskal_weight) = sequential::kruskal_msf(&graph);
    let a = ampc::minimum_spanning_forest(&graph, EPSILON, seed);
    let (_, boruvka_weight, m_stats) = mpc::boruvka_msf(&graph, 128);
    let verified = a.output.total_weight == kruskal_weight && boruvka_weight == kruskal_weight;
    Figure1Row {
        problem: "Minimum spanning tree",
        ampc_bound: "O(log log_{m/n} n)",
        mpc_bound: "O(log n)",
        n: graph.num_vertices(),
        m: graph.num_edges(),
        ampc_rounds: a.rounds(),
        mpc_rounds: m_stats.num_rounds(),
        ampc_communication: a.stats.total_communication(),
        mpc_messages: m_stats.total_messages(),
        verified,
    }
}

/// Row "2-edge connectivity": AMPC BC-labeling vs (connectivity-based) MPC
/// pipeline — the baseline round count is the MPC connectivity rounds it
/// would pay at least twice.
pub fn row_two_edge(n: usize, seed: u64) -> Figure1Row {
    let graph = generators::bridged_blocks((n / 64).max(4), 32, 8, seed);
    let a = ampc::two_edge_connectivity(&graph, EPSILON, seed);
    let (_, m_stats) = mpc::pointer_doubling_connectivity(&graph, 128);
    let verified = a.output.bridges == sequential::bridges(&graph)
        && a.output.two_edge_components == sequential::two_edge_connected_components(&graph);
    Figure1Row {
        problem: "2-edge connectivity",
        ampc_bound: "O(log log_{m/n} n)",
        mpc_bound: "O(log D · log log_{m/n} n)",
        n: graph.num_vertices(),
        m: graph.num_edges(),
        ampc_rounds: a.rounds(),
        mpc_rounds: 2 * m_stats.num_rounds(),
        ampc_communication: a.stats.total_communication(),
        mpc_messages: 2 * m_stats.total_messages(),
        verified,
    }
}

/// Row "Forest connectivity": AMPC Euler tour + cycle connectivity vs MPC
/// pointer doubling on the forest.
pub fn row_forest_connectivity(n: usize, seed: u64) -> Figure1Row {
    let graph = generators::random_forest(n, 16, seed);
    let reference = sequential::connected_components(&graph);
    let a = ampc::forest_connectivity(&graph, EPSILON, seed);
    let (labels, m_stats) = mpc::pointer_doubling_connectivity(&graph, 128);
    let verified = a.output == reference && labels == reference;
    Figure1Row {
        problem: "Forest connectivity",
        ampc_bound: "O(1)",
        mpc_bound: "O(log D · log log_{m/n} n)",
        n: graph.num_vertices(),
        m: graph.num_edges(),
        ampc_rounds: a.rounds(),
        mpc_rounds: m_stats.num_rounds(),
        ampc_communication: a.stats.total_communication(),
        mpc_messages: m_stats.total_messages(),
        verified,
    }
}

/// All six rows of Figure 1 at instance size `n`.
pub fn figure1_table(n: usize, seed: u64) -> Vec<Figure1Row> {
    vec![
        row_connectivity(n, seed),
        row_msf(n, seed),
        row_two_edge(n, seed),
        row_mis(n, seed),
        row_two_cycle(n, seed),
        row_forest_connectivity(n, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_verifies_and_shows_the_expected_direction() {
        for row in figure1_table(2_000, 3) {
            assert!(row.verified, "{} failed verification", row.problem);
            assert!(row.ampc_rounds > 0);
            assert!(row.mpc_rounds > 0);
        }
    }

    #[test]
    fn two_cycle_gap_grows_with_n() {
        let small = row_two_cycle(1_024, 2);
        let large = row_two_cycle(16_384, 2);
        assert!(small.verified && large.verified);
        // The MPC round count grows with log n; the AMPC one stays ~flat.
        assert!(large.mpc_rounds > small.mpc_rounds);
        assert!(large.ampc_rounds <= small.ampc_rounds + 4);
    }
}

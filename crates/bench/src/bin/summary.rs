//! Print the full experimental reproduction as text tables.
//!
//! `cargo run -p ampc-bench --bin summary --release [-- --quick]`
//!
//! Regenerates, in order:
//!   1. Figure 1 — AMPC vs MPC measured rounds for all six problems;
//!   2. the rounds-vs-n scaling series per problem;
//!   3. the rounds-vs-density series (the log log_{m/n} n term);
//!   4. the rounds-vs-diameter series (the log D term MPC pays);
//!   5. the rounds-vs-ε ablation;
//!   6. the Lemma 2.1 contention experiment;
//!   7. the commit-throughput / read-latency series, also written to
//!      `BENCH_commit.json` so future PRs have a perf trajectory.
//!
//! The numbers printed by this binary are the source of EXPERIMENTS.md.

use ampc_bench::{
    backend_read_latency, cluster_commit_scaling, commit_throughput, contention_experiment,
    density_series, diameter_series, epsilon_series, figure1_table, read_latency, scaling_series,
    serve_throughput,
};
use std::fmt::Write as _;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed = 2019;

    // ---------------------------------------------------------------- Figure 1
    let n = if quick { 4_096 } else { 32_768 };
    println!("== Figure 1: round complexities, measured at n = {n} ==\n");
    println!(
        "{:<26} {:>22} {:>28} {:>12} {:>12} {:>9}",
        "problem", "paper AMPC bound", "paper MPC bound", "AMPC rounds", "MPC rounds", "verified"
    );
    for row in figure1_table(n, seed) {
        println!(
            "{:<26} {:>22} {:>28} {:>12} {:>12} {:>9}",
            row.problem,
            row.ampc_bound,
            row.mpc_bound,
            row.ampc_rounds,
            row.mpc_rounds,
            if row.verified { "yes" } else { "NO" }
        );
    }

    // ------------------------------------------------------- rounds vs n series
    let sizes: Vec<usize> = if quick {
        vec![1_024, 4_096, 16_384]
    } else {
        vec![1_024, 4_096, 16_384, 65_536]
    };
    println!("\n== Rounds vs n (AMPC / MPC baseline) ==\n");
    print!("{:<16}", "problem");
    for &s in &sizes {
        print!("{:>16}", s);
    }
    println!();
    for problem in [
        "two_cycle",
        "connectivity",
        "mis",
        "msf",
        "forest",
        "list_ranking",
    ] {
        let series = scaling_series(problem, &sizes, seed);
        print!("{:<16}", problem);
        for point in &series {
            print!(
                "{:>16}",
                format!("{}/{}", point.ampc_rounds, point.mpc_rounds)
            );
        }
        println!();
    }

    // -------------------------------------------------------- density series
    let density_n = if quick { 8_192 } else { 32_768 };
    let densities = [2usize, 4, 8, 16];
    println!("\n== Connectivity rounds vs density m/n (n = {density_n}) ==\n");
    println!(
        "{:>8} {:>14} {:>18}",
        "m/n", "AMPC rounds", "MPC log-n rounds"
    );
    for point in density_series(density_n, &densities, seed) {
        println!(
            "{:>8} {:>14} {:>18}",
            point.x, point.ampc_rounds, point.mpc_rounds
        );
    }

    // ------------------------------------------------------- diameter series
    let clique_counts: Vec<usize> = if quick {
        vec![8, 32, 128]
    } else {
        vec![8, 32, 128, 512]
    };
    println!("\n== Connectivity rounds vs diameter (path of 16-cliques) ==\n");
    println!(
        "{:>10} {:>14} {:>20}",
        "diameter", "AMPC rounds", "MPC O(D) rounds"
    );
    for point in diameter_series(16, &clique_counts, seed) {
        println!(
            "{:>10} {:>14} {:>20}",
            point.x, point.ampc_rounds, point.mpc_rounds
        );
    }

    // -------------------------------------------------------- epsilon ablation
    let eps_n = if quick { 8_192 } else { 65_536 };
    let epsilons = [0.25, 0.4, 0.5, 0.65, 0.8];
    println!("\n== 2-Cycle rounds vs space exponent ε (n = {eps_n}) ==\n");
    println!(
        "{:>8} {:>14} {:>30}",
        "ε", "AMPC rounds", "max per-machine communication"
    );
    for point in epsilon_series(eps_n, &epsilons, seed) {
        println!(
            "{:>8} {:>14} {:>30}",
            point.x, point.ampc_rounds, point.ampc_max_machine_communication
        );
    }

    // ----------------------------------------------------- contention (L. 2.1)
    let pairs = if quick { 65_536 } else { 262_144 };
    let machines = [16usize, 64, 256, 1024];
    println!("\n== Lemma 2.1: weighted balls-into-bins contention (T = {pairs}) ==\n");
    println!(
        "{:>8} {:>10} {:>14} {:>12}",
        "P", "S = T/P", "max bin load", "imbalance"
    );
    for report in contention_experiment(pairs, &machines, seed) {
        println!(
            "{:>8} {:>10} {:>14} {:>12.3}",
            report.bins, report.mean_load as u64, report.max_load, report.imbalance
        );
    }

    // --------------------------------------- commit throughput / read latency
    let commit_pairs = if quick { 262_144 } else { 1_048_576 };
    let shard_counts = [1usize, 4, 8, 16, 64, 256];
    println!(
        "\n== Epoch commit path: per-write locking vs shard-parallel (T = {commit_pairs}) ==\n"
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>9} {:>12} {:>11} {:>11} {:>9}",
        "shards",
        "serial ms",
        "batched ms",
        "parallel ms",
        "speedup",
        "Mwrites/s",
        "part-1t ms",
        "part-Nt ms",
        "part-spd"
    );
    let commit_points = commit_throughput(commit_pairs, &shard_counts, 0, seed);
    for point in &commit_points {
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>12.2} {:>8.2}x {:>12.1} {:>11.2} {:>11.2} {:>8.2}x",
            point.shards,
            point.serial_ns as f64 / 1e6,
            point.batched_ns as f64 / 1e6,
            point.parallel_ns as f64 / 1e6,
            point.speedup_parallel_over_serial(),
            point.parallel_mwrites_per_sec(),
            point.partition_serial_ns as f64 / 1e6,
            point.partition_parallel_ns as f64 / 1e6,
            point.partition_speedup(),
        );
    }

    let read_keys = if quick { 262_144 } else { 1_048_576 };
    let read_probes = read_keys * 4;
    let latency = read_latency(read_keys, read_probes, 256, seed);
    println!("\n== Snapshot read latency: compact slots vs legacy Vec-per-key ==\n");
    println!(
        "{:>12} {:>12} {:>16} {:>16}",
        "keys", "reads", "compact ns/read", "legacy ns/read"
    );
    println!(
        "{:>12} {:>12} {:>16.1} {:>16.1}",
        latency.keys, latency.reads, latency.compact_ns_per_read, latency.legacy_ns_per_read
    );

    let backend_keys = if quick { 65_536 } else { 262_144 };
    let backend_reads = backend_keys * 2;
    let backend_points = backend_read_latency(backend_keys, backend_reads, 64, 0, seed);
    println!("\n== Per-backend read latency: point vs batched vs windowed ==\n");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>14}",
        "backend", "mode", "keys", "reads", "ns/read"
    );
    for point in &backend_points {
        println!(
            "{:>10} {:>10} {:>12} {:>12} {:>14.1}",
            point.backend, point.mode, point.keys, point.reads, point.ns_per_read
        );
    }

    let serve_commits = if quick { 256 } else { 1_024 };
    let serve_points = serve_throughput(8, serve_commits);
    println!("\n== Serve-path throughput: 8 leased clients, pipelined vs one-in-flight ==\n");
    println!(
        "{:>14} {:>9} {:>8} {:>10} {:>12} {:>10} {:>10}",
        "mode", "clients", "window", "requests", "req/s", "p50 µs", "p99 µs"
    );
    for point in &serve_points {
        println!(
            "{:>14} {:>9} {:>8} {:>10} {:>12.0} {:>10.1} {:>10.1}",
            point.mode,
            point.clients,
            point.window,
            point.requests,
            point.requests_per_sec,
            point.p50_ns as f64 / 1e3,
            point.p99_ns as f64 / 1e3,
        );
    }

    let cluster_pairs = if quick { 8_192 } else { 65_536 };
    let cluster_rounds = if quick { 4 } else { 16 };
    let cluster_points = cluster_commit_scaling(cluster_pairs, 64, cluster_rounds, seed);
    println!("\n== Cluster commit scaling: 1 vs 2 owners, 64 total shards ==\n");
    println!(
        "{:>8} {:>8} {:>12} {:>8} {:>14} {:>12} {:>10}",
        "owners", "shards", "pairs/round", "rounds", "commit req/s", "Mpairs/s", "rounds/s"
    );
    for point in &cluster_points {
        println!(
            "{:>8} {:>8} {:>12} {:>8} {:>14.0} {:>12.2} {:>10.1}",
            point.owners,
            point.shards,
            point.pairs_per_round,
            point.rounds,
            point.commit_reqs_per_sec(),
            point.commit_mpairs_per_sec(),
            point.rounds_per_sec(),
        );
    }

    write_bench_commit_json(
        &commit_points,
        &latency,
        &backend_points,
        &serve_points,
        &cluster_points,
    );
    println!("\nCommit/read series recorded in BENCH_commit.json.");
    println!("All verified rows compare against sequential reference algorithms.");
}

/// Serialise the commit-throughput and read-latency series as JSON
/// (hand-rolled: the workspace intentionally carries no serde-json
/// dependency).
fn write_bench_commit_json(
    commits: &[ampc_bench::CommitThroughputPoint],
    latency: &ampc_bench::ReadLatencyPoint,
    backend_reads: &[ampc_bench::BackendReadLatencyPoint],
    serve: &[ampc_bench::ServeThroughputPoint],
    cluster: &[ampc_bench::ClusterCommitPoint],
) {
    let mut json = String::from("{\n  \"commit_throughput\": [\n");
    for (i, p) in commits.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"shards\": {}, \"pairs\": {}, \"threads\": {}, \"serial_ns\": {}, \
             \"batched_ns\": {}, \"parallel_ns\": {}, \"partition_serial_ns\": {}, \
             \"partition_parallel_ns\": {}, \"speedup_parallel_over_serial\": {:.3}, \
             \"partition_speedup\": {:.3}, \"parallel_mwrites_per_sec\": {:.3}}}{}",
            p.shards,
            p.pairs,
            p.threads,
            p.serial_ns,
            p.batched_ns,
            p.parallel_ns,
            p.partition_serial_ns,
            p.partition_parallel_ns,
            p.speedup_parallel_over_serial(),
            p.partition_speedup(),
            p.parallel_mwrites_per_sec(),
            if i + 1 < commits.len() { "," } else { "" },
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"read_latency\": {{\"keys\": {}, \"reads\": {}, \"compact_ns_per_read\": {:.3}, \
         \"legacy_ns_per_read\": {:.3}}},",
        latency.keys, latency.reads, latency.compact_ns_per_read, latency.legacy_ns_per_read,
    );
    let _ = writeln!(json, "  \"read_latency_backends\": [");
    for (i, p) in backend_reads.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{}\", \"mode\": \"{}\", \"keys\": {}, \"reads\": {}, \
             \"ns_per_read\": {:.3}}}{}",
            p.backend,
            p.mode,
            p.keys,
            p.reads,
            p.ns_per_read,
            if i + 1 < backend_reads.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],\n  \"serve_throughput\": [");
    for (i, p) in serve.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"clients\": {}, \"window\": {}, \"requests\": {}, \
             \"requests_per_sec\": {:.3}, \"p50_ns\": {}, \"p99_ns\": {}}}{}",
            p.mode,
            p.clients,
            p.window,
            p.requests,
            p.requests_per_sec,
            p.p50_ns,
            p.p99_ns,
            if i + 1 < serve.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],\n  \"cluster_commit_scaling\": [");
    for (i, p) in cluster.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"owners\": {}, \"shards\": {}, \"pairs_per_round\": {}, \"rounds\": {}, \
             \"commit_ns\": {}, \"round_ns\": {}, \"commit_reqs_per_sec\": {:.3}, \
             \"commit_mpairs_per_sec\": {:.3}, \"rounds_per_sec\": {:.3}}}{}",
            p.owners,
            p.shards,
            p.pairs_per_round,
            p.rounds,
            p.commit_ns,
            p.round_ns,
            p.commit_reqs_per_sec(),
            p.commit_mpairs_per_sec(),
            p.rounds_per_sec(),
            if i + 1 < cluster.len() { "," } else { "" },
        );
    }
    let _ = write!(json, "  ]\n}}\n");
    if let Err(err) = std::fs::write("BENCH_commit.json", json) {
        eprintln!("could not write BENCH_commit.json: {err}");
    }
}

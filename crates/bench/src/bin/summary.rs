//! Print the full experimental reproduction as text tables.
//!
//! `cargo run -p ampc-bench --bin summary --release [-- --quick]`
//!
//! Regenerates, in order:
//!   1. Figure 1 — AMPC vs MPC measured rounds for all six problems;
//!   2. the rounds-vs-n scaling series per problem;
//!   3. the rounds-vs-density series (the log log_{m/n} n term);
//!   4. the rounds-vs-diameter series (the log D term MPC pays);
//!   5. the rounds-vs-ε ablation;
//!   6. the Lemma 2.1 contention experiment.
//!
//! The numbers printed by this binary are the source of EXPERIMENTS.md.

use ampc_bench::{
    contention_experiment, density_series, diameter_series, epsilon_series, figure1_table,
    scaling_series,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed = 2019;

    // ---------------------------------------------------------------- Figure 1
    let n = if quick { 4_096 } else { 32_768 };
    println!("== Figure 1: round complexities, measured at n = {n} ==\n");
    println!(
        "{:<26} {:>22} {:>28} {:>12} {:>12} {:>9}",
        "problem", "paper AMPC bound", "paper MPC bound", "AMPC rounds", "MPC rounds", "verified"
    );
    for row in figure1_table(n, seed) {
        println!(
            "{:<26} {:>22} {:>28} {:>12} {:>12} {:>9}",
            row.problem,
            row.ampc_bound,
            row.mpc_bound,
            row.ampc_rounds,
            row.mpc_rounds,
            if row.verified { "yes" } else { "NO" }
        );
    }

    // ------------------------------------------------------- rounds vs n series
    let sizes: Vec<usize> = if quick {
        vec![1_024, 4_096, 16_384]
    } else {
        vec![1_024, 4_096, 16_384, 65_536]
    };
    println!("\n== Rounds vs n (AMPC / MPC baseline) ==\n");
    print!("{:<16}", "problem");
    for &s in &sizes {
        print!("{:>16}", s);
    }
    println!();
    for problem in ["two_cycle", "connectivity", "mis", "msf", "forest", "list_ranking"] {
        let series = scaling_series(problem, &sizes, seed);
        print!("{:<16}", problem);
        for point in &series {
            print!("{:>16}", format!("{}/{}", point.ampc_rounds, point.mpc_rounds));
        }
        println!();
    }

    // -------------------------------------------------------- density series
    let density_n = if quick { 8_192 } else { 32_768 };
    let densities = [2usize, 4, 8, 16];
    println!("\n== Connectivity rounds vs density m/n (n = {density_n}) ==\n");
    println!("{:>8} {:>14} {:>18}", "m/n", "AMPC rounds", "MPC log-n rounds");
    for point in density_series(density_n, &densities, seed) {
        println!("{:>8} {:>14} {:>18}", point.x, point.ampc_rounds, point.mpc_rounds);
    }

    // ------------------------------------------------------- diameter series
    let clique_counts: Vec<usize> = if quick { vec![8, 32, 128] } else { vec![8, 32, 128, 512] };
    println!("\n== Connectivity rounds vs diameter (path of 16-cliques) ==\n");
    println!("{:>10} {:>14} {:>20}", "diameter", "AMPC rounds", "MPC O(D) rounds");
    for point in diameter_series(16, &clique_counts, seed) {
        println!("{:>10} {:>14} {:>20}", point.x, point.ampc_rounds, point.mpc_rounds);
    }

    // -------------------------------------------------------- epsilon ablation
    let eps_n = if quick { 8_192 } else { 65_536 };
    let epsilons = [0.25, 0.4, 0.5, 0.65, 0.8];
    println!("\n== 2-Cycle rounds vs space exponent ε (n = {eps_n}) ==\n");
    println!("{:>8} {:>14} {:>30}", "ε", "AMPC rounds", "max per-machine communication");
    for point in epsilon_series(eps_n, &epsilons, seed) {
        println!(
            "{:>8} {:>14} {:>30}",
            point.x, point.ampc_rounds, point.ampc_max_machine_communication
        );
    }

    // ----------------------------------------------------- contention (L. 2.1)
    let pairs = if quick { 65_536 } else { 262_144 };
    let machines = [16usize, 64, 256, 1024];
    println!("\n== Lemma 2.1: weighted balls-into-bins contention (T = {pairs}) ==\n");
    println!("{:>8} {:>10} {:>14} {:>12}", "P", "S = T/P", "max bin load", "imbalance");
    for report in contention_experiment(pairs, &machines, seed) {
        println!(
            "{:>8} {:>10} {:>14} {:>12.3}",
            report.bins, report.mean_load as u64, report.max_load, report.imbalance
        );
    }

    println!("\nAll verified rows compare against sequential reference algorithms.");
}

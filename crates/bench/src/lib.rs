//! # ampc-bench — the experiment harness behind every table and figure
//!
//! The paper's evaluation artefact is **Figure 1**: a table of round
//! complexities comparing the new AMPC algorithms with the best known MPC
//! algorithms for six problems, plus the per-theorem bounds on rounds and
//! communication.  This crate regenerates those results:
//!
//! * [`figure1`] — one function per row of Figure 1 that runs the AMPC
//!   algorithm and the MPC baseline on the same generated instance and
//!   reports measured round counts and communication;
//! * [`series`] — the scaling "figures": round counts as a function of `n`,
//!   of the density `m/n` (the `log log_{m/n} n` term), of the diameter `D`
//!   (the `log D` term the MPC baselines pay), and of the space exponent ε
//!   (the ablation);
//! * [`contention`] — the Lemma 2.1 balls-into-bins experiment;
//! * [`commit`] — commit-path throughput (per-write locking vs shard-grouped
//!   vs shard-parallel) and snapshot read latency (compact vs legacy
//!   layout), the series behind `BENCH_commit.json`;
//! * [`cluster`] — commit-request throughput with the store split across
//!   1 vs 2 cluster owners at the same total shard count, the
//!   `cluster_commit_scaling` section of the same artifact;
//! * [`read_backends`] — per-backend read latency (Local vs Channel; point
//!   vs batched vs auto-batching window), the `read_latency_backends`
//!   section of the same artifact;
//! * [`serve_throughput`] — many-client throughput against the standalone
//!   owner process, pipelined vs one-in-flight, the `serve_throughput`
//!   section of the same artifact;
//! * the Criterion benches under `benches/` measure wall-clock time of the
//!   same code paths, one bench file per experiment id in DESIGN.md;
//! * the `summary` binary (`cargo run -p ampc-bench --bin summary --release`)
//!   prints the whole reproduction as text tables and records them for
//!   EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod cluster;
pub mod commit;
pub mod contention;
pub mod figure1;
pub mod read_backends;
pub mod series;
pub mod serve_throughput;

pub use cluster::{cluster_commit_scaling, ClusterCommitPoint};
pub use commit::{commit_throughput, read_latency, CommitThroughputPoint, ReadLatencyPoint};
pub use contention::contention_experiment;
pub use figure1::{figure1_table, Figure1Row};
pub use read_backends::{backend_read_latency, BackendReadLatencyPoint};
pub use series::{density_series, diameter_series, epsilon_series, scaling_series, SeriesPoint};
pub use serve_throughput::{serve_throughput, ServeThroughputPoint};

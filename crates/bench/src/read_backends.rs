//! Per-backend read-latency experiment: Local vs Channel vs Remote (TCP),
//! point vs batched vs auto-batching window.
//!
//! The AMPC model charges algorithms per adaptive query, so the DDS read
//! path is the hot loop of every algorithm round.  This experiment probes
//! the same frozen epoch through every [`SnapshotView`] read mode, on every
//! shipped backend:
//!
//! * **point** — one [`SnapshotView::get`] per key, the model's plain
//!   adaptive read.  On `ChannelBackend` this used to be a full channel
//!   round-trip to the shard's owner thread; since the zero-copy epoch
//!   publication it is a lock-free probe of the `Arc`-shared frozen maps,
//!   which is exactly what this series quantifies.  On `TcpBackend` the
//!   probe hits the replica fetched over the wire at advance time — the
//!   `remote` series keeps that read path honest from day one.
//! * **batched** — [`SnapshotView::get_many_slice`] flights of
//!   [`FLIGHT`] keys, the explicit batching algorithms use when a whole key
//!   set is in hand.
//! * **windowed** — the runtime's auto-batching window
//!   (`MachineContext::queue_read` / `take_read`), timed through a real
//!   single-machine round so the ticket bookkeeping is part of the cost.
//!
//! The `summary` binary serialises the series into the
//! `read_latency_backends` section of `BENCH_commit.json`; the headline
//! number is channel-point vs local-point, which the ROADMAP perf target
//! requires within 2× of each other.

use crate::commit::workload;
use ampc_dds::{ChannelBackend, DdsBackend, Key, KeyTag, LocalBackend, SnapshotView, TcpBackend};
use ampc_runtime::{AmpcConfig, AmpcRuntime, ReadTicket};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Keys per explicit `get_many` flight in the batched mode.
const FLIGHT: usize = 256;

/// Timed passes per (backend, mode); the *minimum* is reported.  Latency
/// microbenches on a shared (1-CPU CI) host see scheduler noise only ever
/// *add* time, so the minimum is the noise-robust estimator — the
/// windowed/batched CI sentinel gates on these numbers and must not flake.
const PASSES: usize = 5;

/// One (backend, read mode) latency measurement against a frozen epoch.
#[derive(Clone, Debug)]
pub struct BackendReadLatencyPoint {
    /// Backend name (`"local"` / `"channel"` / `"remote"`).
    pub backend: &'static str,
    /// Read mode (`"point"` / `"batched"` / `"windowed"`).
    pub mode: &'static str,
    /// Distinct keys resident in the epoch.
    pub keys: usize,
    /// Lookups timed (per pass).
    pub reads: usize,
    /// Mean latency per lookup, nanoseconds — minimum over [`PASSES`]
    /// timed passes.
    pub ns_per_read: f64,
    /// Checksum of the values read (anti-dead-code; equal across modes and
    /// backends).
    pub checksum: u64,
}

fn probes(keys: usize, reads: usize, seed: u64) -> Vec<Key> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    (0..reads)
        .map(|_| Key::of(KeyTag::Scalar, rng.gen_range(0..keys as u64)))
        .collect()
}

/// Measure the point and batched modes of one backend's view.
fn measure_view<B: DdsBackend>(
    name: &'static str,
    keys: usize,
    reads: usize,
    shards: usize,
    threads: usize,
    seed: u64,
) -> Vec<BackendReadLatencyPoint> {
    let mut backend = B::with_shards(shards, threads);
    backend.commit_round(vec![workload(keys, seed)], threads);
    let view = backend.advance(threads);
    let probes = probes(keys, reads, seed);

    let mut point_ns = f64::INFINITY;
    let mut point_sum = 0u64;
    for pass in 0..PASSES {
        let started = Instant::now();
        let mut sum = 0u64;
        for key in &probes {
            if let Some(value) = view.get(key) {
                sum = sum.wrapping_add(value.x);
            }
        }
        point_ns = point_ns.min(started.elapsed().as_nanos() as f64 / reads.max(1) as f64);
        if pass > 0 {
            assert_eq!(sum, point_sum, "passes must agree on every read");
        }
        point_sum = sum;
    }

    let mut out = vec![None; FLIGHT];
    let mut batched_ns = f64::INFINITY;
    let mut batched_sum = 0u64;
    for pass in 0..PASSES {
        let started = Instant::now();
        let mut sum = 0u64;
        for flight in probes.chunks(FLIGHT) {
            view.get_many_slice(flight, &mut out);
            for value in out.iter().take(flight.len()).flatten() {
                sum = sum.wrapping_add(value.x);
            }
        }
        batched_ns = batched_ns.min(started.elapsed().as_nanos() as f64 / reads.max(1) as f64);
        if pass > 0 {
            assert_eq!(sum, batched_sum, "passes must agree on every read");
        }
        batched_sum = sum;
    }

    assert_eq!(point_sum, batched_sum, "modes must agree on every read");
    vec![
        BackendReadLatencyPoint {
            backend: name,
            mode: "point",
            keys,
            reads,
            ns_per_read: point_ns,
            checksum: point_sum,
        },
        BackendReadLatencyPoint {
            backend: name,
            mode: "batched",
            keys,
            reads,
            ns_per_read: batched_ns,
            checksum: batched_sum,
        },
    ]
}

/// Measure the auto-batching window through a real single-machine round.
fn measure_windowed<B: DdsBackend>(
    name: &'static str,
    keys: usize,
    reads: usize,
    shards: usize,
    threads: usize,
    seed: u64,
) -> BackendReadLatencyPoint {
    let config = AmpcConfig::for_graph(keys.max(4), 0, 0.5)
        .with_num_shards(shards)
        .expect("bench shard counts are in range")
        .with_threads(threads)
        .with_seed(seed);
    let mut runtime = AmpcRuntime::<B>::with_backend(config);
    runtime.load_input(workload(keys, seed));
    let probes = probes(keys, reads, seed);
    let probes = &probes;
    let (ns_per_read, checksum) = runtime
        .run_round(1, move |ctx| {
            let mut best_ns = f64::INFINITY;
            let mut checksum = 0u64;
            let mut tickets: Vec<ReadTicket> = Vec::with_capacity(FLIGHT);
            for pass in 0..PASSES {
                let started = Instant::now();
                let mut sum = 0u64;
                for flight in probes.chunks(FLIGHT) {
                    tickets.clear();
                    tickets.extend(flight.iter().map(|&key| ctx.queue_read(key)));
                    for &ticket in &tickets {
                        if let Some(value) = ctx.take_read(ticket) {
                            sum = sum.wrapping_add(value.x);
                        }
                    }
                }
                best_ns =
                    best_ns.min(started.elapsed().as_nanos() as f64 / probes.len().max(1) as f64);
                if pass > 0 {
                    assert_eq!(sum, checksum, "passes must agree on every read");
                }
                checksum = sum;
            }
            (best_ns, checksum)
        })
        .expect("bench round stays within Record budget mode")
        .remove(0);
    BackendReadLatencyPoint {
        backend: name,
        mode: "windowed",
        keys,
        reads,
        ns_per_read,
        checksum,
    }
}

/// Run the full experiment: every read mode on every shipped backend, same
/// resident keys, same probe sequence.
///
/// `threads` caps backend parallelism (owner threads for the channel
/// backend; 0 = one per available CPU).
pub fn backend_read_latency(
    keys: usize,
    reads: usize,
    shards: usize,
    threads: usize,
    seed: u64,
) -> Vec<BackendReadLatencyPoint> {
    let threads = if threads == 0 {
        ampc_dds::default_parallelism()
    } else {
        threads
    };
    let mut points = measure_view::<LocalBackend>("local", keys, reads, shards, threads, seed);
    points.push(measure_windowed::<LocalBackend>(
        "local", keys, reads, shards, threads, seed,
    ));
    points.extend(measure_view::<ChannelBackend>(
        "channel", keys, reads, shards, threads, seed,
    ));
    points.push(measure_windowed::<ChannelBackend>(
        "channel", keys, reads, shards, threads, seed,
    ));
    points.extend(measure_view::<TcpBackend>(
        "remote", keys, reads, shards, threads, seed,
    ));
    points.push(measure_windowed::<TcpBackend>(
        "remote", keys, reads, shards, threads, seed,
    ));
    let checksum = points[0].checksum;
    assert!(
        points.iter().all(|p| p.checksum == checksum),
        "backends must agree on every read"
    );
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_covers_every_backend_and_mode() {
        let points = backend_read_latency(2_000, 10_000, 16, 2, 42);
        let labels: Vec<(&str, &str)> = points.iter().map(|p| (p.backend, p.mode)).collect();
        assert_eq!(
            labels,
            vec![
                ("local", "point"),
                ("local", "batched"),
                ("local", "windowed"),
                ("channel", "point"),
                ("channel", "batched"),
                ("channel", "windowed"),
                ("remote", "point"),
                ("remote", "batched"),
                ("remote", "windowed"),
            ]
        );
        for point in &points {
            assert_eq!(point.keys, 2_000);
            assert_eq!(point.reads, 10_000);
            assert!(point.ns_per_read > 0.0, "{point:?}");
        }
        // Every mode on every backend read the exact same values.
        assert!(points.iter().all(|p| p.checksum == points[0].checksum));
    }
}

//! Experiment A.rounds_vs_eps — the space-exponent ablation.
//!
//! The `O(1/ε)` trade-off: smaller per-machine space (smaller ε) means more
//! Shrink iterations and more rounds, but less per-machine communication.
//! This bench measures the wall-clock side of that trade-off for the
//! 2-Cycle algorithm and for connectivity.

use ampc_algorithms::{connectivity, two_cycle};
use ampc_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_epsilon_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_epsilon");
    group.sample_size(10);
    let cycle = generators::two_cycle_instance(16_384, false, 5);
    let graph = generators::planted_components(8_192, 8, 3 * 8_192 / 8, 5);
    for &eps in &[0.3f64, 0.5, 0.7] {
        group.bench_with_input(
            BenchmarkId::new("two_cycle", format!("eps{eps}")),
            &cycle,
            |b, g| b.iter(|| two_cycle(g, eps, 5)),
        );
        group.bench_with_input(
            BenchmarkId::new("connectivity", format!("eps{eps}")),
            &graph,
            |b, g| b.iter(|| connectivity(g, eps, 5)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_epsilon_ablation);
criterion_main!(benches);

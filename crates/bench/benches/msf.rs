//! Experiment F1.msf — Figure 1, row "Minimum spanning tree".
//!
//! AMPC MSF via local Prim + contraction (Section 7) against Borůvka
//! (`O(log n)` rounds) on weighted connected G(n, 3n).

use ampc_algorithms::minimum_spanning_forest;
use ampc_graph::generators;
use ampc_mpc::boruvka_msf;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_msf(c: &mut Criterion) {
    let mut group = c.benchmark_group("msf");
    group.sample_size(10);
    for &n in &[2_048usize, 8_192] {
        let base = generators::connected_gnm(n, 3 * n, 11);
        let graph = generators::with_random_weights(&base, 12);
        group.bench_with_input(BenchmarkId::new("ampc_local_prim", n), &graph, |b, g| {
            b.iter(|| minimum_spanning_forest(g, 0.5, 11))
        });
        group.bench_with_input(BenchmarkId::new("mpc_boruvka", n), &graph, |b, g| {
            b.iter(|| boruvka_msf(g, 128))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_msf);
criterion_main!(benches);

//! Experiment T6.list_ranking — Theorem 6.
//!
//! AMPC list ranking (Algorithm 11, `O(1/ε)` rounds) against Wyllie's
//! pointer-jumping list ranking (`Θ(log n)` rounds).

use ampc_algorithms::list_ranking;
use ampc_mpc::wyllie_list_ranking;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn shuffled_list(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);
    let mut successor = vec![0u32; n];
    for i in 0..n - 1 {
        successor[order[i] as usize] = order[i + 1];
    }
    successor[order[n - 1] as usize] = order[n - 1];
    successor
}

fn bench_list_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("list_ranking");
    group.sample_size(10);
    for &n in &[8_192usize, 65_536] {
        let successor = shuffled_list(n, 21);
        group.bench_with_input(BenchmarkId::new("ampc", n), &successor, |b, s| {
            b.iter(|| list_ranking(s, 0.5, 21))
        });
        group.bench_with_input(BenchmarkId::new("mpc_wyllie", n), &successor, |b, s| {
            b.iter(|| wyllie_list_ranking(s, 128))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_list_ranking);
criterion_main!(benches);

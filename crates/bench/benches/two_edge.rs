//! Experiment F1.two_edge — Figure 1, row "2-edge connectivity".
//!
//! The AMPC BC-labeling pipeline (Section 9) on bridged block chains,
//! compared with the sequential Hopcroft–Tarjan DFS it is verified against
//! (there is no simple MPC-round baseline for 2-edge connectivity other than
//! running MPC connectivity twice, which the connectivity bench covers).

use ampc_algorithms::two_edge_connectivity;
use ampc_graph::{generators, sequential};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_two_edge(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_edge_connectivity");
    group.sample_size(10);
    for &blocks in &[16usize, 64] {
        let graph = generators::bridged_blocks(32, blocks, 8, 3);
        let n = graph.num_vertices();
        group.bench_with_input(BenchmarkId::new("ampc_bc_labeling", n), &graph, |b, g| {
            b.iter(|| two_edge_connectivity(g, 0.5, 3))
        });
        group.bench_with_input(BenchmarkId::new("sequential_dfs", n), &graph, |b, g| {
            b.iter(|| {
                (
                    sequential::bridges(g),
                    sequential::two_edge_connected_components(g),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_two_edge);
criterion_main!(benches);

//! Experiment F1.forest_conn — Figure 1, row "Forest Connectivity".
//!
//! AMPC forest connectivity via Euler tours + cycle connectivity
//! (Section 8, `O(1/ε)` rounds) against MPC pointer doubling.

use ampc_algorithms::forest_connectivity;
use ampc_graph::generators;
use ampc_mpc::pointer_doubling_connectivity;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_connectivity");
    group.sample_size(10);
    for &n in &[4_096usize, 16_384] {
        let graph = generators::random_forest(n, 16, 13);
        group.bench_with_input(BenchmarkId::new("ampc_euler_tour", n), &graph, |b, g| {
            b.iter(|| forest_connectivity(g, 0.5, 13))
        });
        group.bench_with_input(
            BenchmarkId::new("mpc_pointer_doubling", n),
            &graph,
            |b, g| b.iter(|| pointer_doubling_connectivity(g, 128)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);

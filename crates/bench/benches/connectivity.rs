//! Experiment F1.connectivity — Figure 1, row "Connectivity".
//!
//! AMPC connectivity (Section 6, `O(log log_{m/n} n)` rounds) against the
//! two MPC baselines: Shiloach–Vishkin-style hooking (`O(log n)`) and label
//! propagation (`O(D)`), on planted-component graphs with m/n ≈ 4.

use ampc_algorithms::connectivity;
use ampc_graph::generators;
use ampc_mpc::{label_propagation_connectivity, pointer_doubling_connectivity};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("connectivity");
    group.sample_size(10);
    for &n in &[4_096usize, 16_384] {
        let graph = generators::planted_components(n, 8, 3 * n / 8, 9);
        group.bench_with_input(BenchmarkId::new("ampc", n), &graph, |b, g| {
            b.iter(|| connectivity(g, 0.5, 9))
        });
        group.bench_with_input(BenchmarkId::new("mpc_sv_hooking", n), &graph, |b, g| {
            b.iter(|| pointer_doubling_connectivity(g, 128))
        });
        group.bench_with_input(
            BenchmarkId::new("mpc_label_propagation", n),
            &graph,
            |b, g| b.iter(|| label_propagation_connectivity(g, 0.5)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_connectivity);
criterion_main!(benches);

//! Experiment T7.tree_ops — Theorem 7 and Lemmas 8.7–8.9.
//!
//! Wall-clock cost of rooting a random forest (Euler tour + list ranking)
//! and of building the subtree-min/max RMQ structure, the two tree
//! toolboxes the 2-edge-connectivity algorithm relies on.

use ampc_algorithms::{root_forest, SparseTableRmq};
use ampc_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_tree_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_ops");
    group.sample_size(10);
    for &n in &[4_096usize, 16_384] {
        let forest = generators::random_forest(n, 8, 17);
        group.bench_with_input(BenchmarkId::new("root_forest", n), &forest, |b, f| {
            b.iter(|| root_forest(f, None, 0.5, 17))
        });
        let values: Vec<u64> = (0..n as u64)
            .map(|x| (x * 2_654_435_761) % 1_000_003)
            .collect();
        group.bench_with_input(
            BenchmarkId::new("rmq_build_and_query", n),
            &values,
            |b, v| {
                b.iter(|| {
                    let rmq = SparseTableRmq::new(v);
                    let mut acc = 0u64;
                    for i in (0..v.len()).step_by(64) {
                        acc = acc.wrapping_add(rmq.query_min(i, v.len() - 1));
                        acc = acc.wrapping_add(rmq.query_max(0, i));
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tree_ops);
criterion_main!(benches);

//! Experiment F1.mis — Figure 1, row "Maximal independent set".
//!
//! AMPC LFMIS via truncated adaptive queries (Section 5, `O(1/ε)` rounds)
//! against Luby's algorithm (`O(log n)` rounds) on G(n, 4n).

use ampc_algorithms::maximal_independent_set;
use ampc_graph::generators;
use ampc_mpc::luby_mis;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis");
    group.sample_size(10);
    for &n in &[2_048usize, 8_192] {
        let graph = generators::erdos_renyi_gnm(n, 4 * n, 5);
        group.bench_with_input(BenchmarkId::new("ampc_lfmis", n), &graph, |b, g| {
            b.iter(|| maximal_independent_set(g, 0.5, 5))
        });
        group.bench_with_input(BenchmarkId::new("mpc_luby", n), &graph, |b, g| {
            b.iter(|| luby_mis(g, 128, 5))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mis);
criterion_main!(benches);

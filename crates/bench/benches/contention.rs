//! Experiment L2.1.contention — Lemma 2.1, plus the DDS hot paths.
//!
//! Weighted balls-into-bins: the cost of distributing T key-value pairs
//! across P DDS machines and the resulting maximum bin load.  The
//! interesting output is the imbalance factor printed by the `summary`
//! binary; this bench tracks the throughput of the simulation itself.
//!
//! The `commit_path` and `read_latency` groups time the epoch pipeline's
//! two hot paths — end-of-round commit throughput (per-write locking vs
//! shard-grouped vs shard-parallel) and frozen-snapshot point reads
//! (compact slots vs the legacy `Vec`-per-key layout) — the same series
//! `summary` records into `BENCH_commit.json`.

use ampc_bench::{commit_throughput, contention_experiment, read_latency};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention_lemma21");
    group.sample_size(10);
    for &pairs in &[65_536usize, 262_144] {
        group.bench_with_input(
            BenchmarkId::new("balls_into_bins", pairs),
            &pairs,
            |b, &t| b.iter(|| contention_experiment(t, &[16, 64, 256], 7)),
        );
    }
    group.finish();
}

fn bench_commit_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_path");
    group.sample_size(10);
    for &shards in &[8usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("throughput", shards), &shards, |b, &s| {
            b.iter(|| commit_throughput(131_072, &[s], 0, 7))
        });
    }
    group.finish();
}

fn bench_read_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_latency");
    group.sample_size(10);
    for &keys in &[65_536usize, 262_144] {
        group.bench_with_input(
            BenchmarkId::new("compact_vs_legacy", keys),
            &keys,
            |b, &k| b.iter(|| read_latency(k, k, 256, 7)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_contention,
    bench_commit_path,
    bench_read_latency
);
criterion_main!(benches);

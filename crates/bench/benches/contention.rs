//! Experiment L2.1.contention — Lemma 2.1.
//!
//! Weighted balls-into-bins: the cost of distributing T key-value pairs
//! across P DDS machines and the resulting maximum bin load.  The
//! interesting output is the imbalance factor printed by the `summary`
//! binary; this bench tracks the throughput of the simulation itself.

use ampc_bench::contention_experiment;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention_lemma21");
    group.sample_size(10);
    for &pairs in &[65_536usize, 262_144] {
        group.bench_with_input(BenchmarkId::new("balls_into_bins", pairs), &pairs, |b, &t| {
            b.iter(|| contention_experiment(t, &[16, 64, 256], 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_contention);
criterion_main!(benches);

//! Experiment A.diameter — the diameter ablation.
//!
//! AMPC connectivity is diameter-independent; MPC label propagation pays
//! Θ(D) rounds.  Path-of-cliques graphs keep density fixed while the
//! diameter grows with the number of cliques.

use ampc_algorithms::connectivity;
use ampc_graph::generators;
use ampc_mpc::label_propagation_connectivity;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_diameter_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_diameter");
    group.sample_size(10);
    for &cliques in &[32usize, 256] {
        let graph = generators::path_of_cliques(16, cliques);
        let label = format!("cliques{cliques}");
        group.bench_with_input(BenchmarkId::new("ampc", &label), &graph, |b, g| {
            b.iter(|| connectivity(g, 0.5, 3))
        });
        group.bench_with_input(
            BenchmarkId::new("mpc_label_propagation", &label),
            &graph,
            |b, g| b.iter(|| label_propagation_connectivity(g, 0.5)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_diameter_ablation);
criterion_main!(benches);

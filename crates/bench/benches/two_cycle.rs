//! Experiment F1.two_cycle — Figure 1, row "2-Cycle".
//!
//! Wall-clock comparison of the AMPC `Shrink` algorithm (Section 4,
//! `O(1/ε)` rounds) against the MPC pointer-doubling baseline (`Θ(log n)`
//! rounds) on the same one-cycle / two-cycle instances.

use ampc_algorithms::two_cycle;
use ampc_graph::generators;
use ampc_mpc::two_cycle_mpc;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_two_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_cycle");
    group.sample_size(10);
    for &n in &[4_096usize, 16_384] {
        let graph = generators::two_cycle_instance(n, false, 7);
        group.bench_with_input(BenchmarkId::new("ampc", n), &graph, |b, g| {
            b.iter(|| two_cycle(g, 0.5, 7))
        });
        group.bench_with_input(
            BenchmarkId::new("mpc_pointer_doubling", n),
            &graph,
            |b, g| b.iter(|| two_cycle_mpc(g, 128)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_two_cycle);
criterion_main!(benches);

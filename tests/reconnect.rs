//! Connection-lifecycle conformance: mid-round TCP disconnects must be
//! survived via reconnect + idempotent replay, with byte-identical outputs.
//!
//! The AMPC fault-tolerance story (paper Section 2.1) rests on immutable
//! epochs: a failed machine re-executes against the same snapshot, a lost
//! request is retransmitted and deduplicated.  PR 4 proved that for lost
//! *replies*; this suite proves the stronger property for lost
//! *connections* — the socket is cut mid-round ([`FaultPlan::sever_connection`]
//! / [`FaultPlan::sever_before_advance`]), the transport reconnects with
//! backoff, replays its lease handshake and the outstanding requests, and
//! the run is byte-identical to a fault-free one, across thread counts.
//!
//! The second half exercises the multi-process shape: runtimes serving
//! their DDS from an external `ampc_dds::serve` owner process, including
//! concurrent isolated sessions and disconnect-recovery against it.

use ampc_suite::dds::{serve, Key, KeyTag, SnapshotView, Value};
use ampc_suite::prelude::*;
use ampc_suite::runtime::with_dds_backend;

fn key(v: u64) -> Key {
    Key::of(KeyTag::Scalar, v)
}

/// A two-round adaptive workload with enough writes that every owner
/// receives commit traffic; returns everything observable (results, echoed
/// reads, the sorted final store, stats, and the fault counters).
type Observed = (
    Vec<u64>,
    Vec<Vec<Option<u64>>>,
    Vec<(Key, Vec<Value>)>,
    Vec<u64>,
    u64,
);

fn run_workload(config: AmpcConfig, plan: FaultPlan) -> Observed {
    with_dds_backend!(config, |rt| {
        let mut rt = rt.with_fault_plan(plan);
        rt.load_input((0..100u64).map(|i| (key(i), Value::scalar(i))));
        let sums = rt
            .run_round(8, |ctx| {
                let id = ctx.machine_id() as u64;
                let mut sum = 0;
                for i in 0..8u64 {
                    let k = id * 8 + i;
                    sum += ctx.read(key(k)).map_or(0, |v| v.x);
                    ctx.write(key(1_000 + k), Value::scalar(k * 3));
                }
                sum
            })
            .unwrap();
        let echoed = rt
            .run_round(8, |ctx| {
                let id = ctx.machine_id() as u64;
                (0..8u64)
                    .map(|i| ctx.read(key(1_000 + id * 8 + i)).map(|v| v.x))
                    .collect::<Vec<_>>()
            })
            .unwrap();
        let mut entries = rt.snapshot().entries();
        entries.sort_by_key(|&(key, _)| key);
        let queries: Vec<u64> = rt
            .stats()
            .rounds
            .iter()
            .map(|round| round.total_queries)
            .collect();
        (sums, echoed, entries, queries, rt.severed_connections())
    })
}

#[test]
fn severed_connections_reconnect_and_replay_byte_identically() {
    // Epoch coordinates: load_input builds epoch 0, round 0's commit
    // targets epoch 1, round 1's advance freezes epoch 2.  Worker 0 exists
    // on every thread count, so both severs fire on every shape.
    for threads in [1usize, 2, 8] {
        let config = || {
            AmpcConfig::for_graph(1_000, 1_000, 0.5)
                .with_threads(threads)
                .with_backend(DdsBackendKind::Remote)
        };
        let clean = run_workload(config(), FaultPlan::none());
        assert_eq!(clean.4, 0, "fault-free runs sever nothing");

        let plan = FaultPlan::none()
            .sever_connection(1, 0) // kill the socket before round 0's commit
            .sever_before_advance(2, 0); // and again before round 1's freeze
        let severed = run_workload(config(), plan);
        assert_eq!(
            severed.4, 2,
            "both scheduled severs must fire with {threads} threads"
        );
        assert_eq!(
            (&clean.0, &clean.1, &clean.2, &clean.3),
            (&severed.0, &severed.1, &severed.2, &severed.3),
            "a severed run must be byte-identical with {threads} threads"
        );
    }
}

#[test]
fn owners_severed_mid_barrier_replay_the_two_phase_advance_byte_identically() {
    // Cluster epoch coordinates: the advance after `load_input` runs the
    // freeze/publish barrier for epoch 0, round 0's advance for epoch 1,
    // round 1's for epoch 2.  The plan cuts owner 0's connection right
    // before round 0's `FreezeEpoch` goes out, and owner 1's *between* the
    // phases of round 1's barrier — after its freeze was acked, before the
    // publish — so one owner holds a prepared-but-unpublished epoch across
    // a reconnect while the other may already have published.  Both heals
    // must leave every observable byte identical to a fault-free cluster
    // run, on every thread count.
    for threads in [1usize, 2, 8] {
        let config = || {
            AmpcConfig::for_graph(1_000, 1_000, 0.5)
                .with_threads(threads)
                .with_cluster_owners(2)
                .expect("two owners are in range")
        };
        let clean = run_workload(config(), FaultPlan::none());
        assert_eq!(clean.4, 0, "fault-free cluster runs sever nothing");

        let plan = FaultPlan::none()
            .sever_owner(1, 0)
            .sever_between_freeze_and_publish(2, 1);
        let severed = run_workload(config(), plan);
        assert_eq!(
            severed.4, 2,
            "both mid-barrier severs must fire with {threads} threads"
        );
        assert_eq!(
            (&clean.0, &clean.1, &clean.2, &clean.3),
            (&severed.0, &severed.1, &severed.2, &severed.3),
            "a cluster severed mid-barrier must heal byte-identically with {threads} threads"
        );
    }
}

#[test]
fn severs_are_ignored_by_backends_without_connections() {
    for backend in [DdsBackendKind::Local, DdsBackendKind::Channel] {
        let config = AmpcConfig::for_graph(1_000, 1_000, 0.5)
            .with_threads(2)
            .with_backend(backend);
        let clean = run_workload(config.clone(), FaultPlan::none());
        let planned = run_workload(config, FaultPlan::none().sever_connection(1, 0));
        assert_eq!(planned.4, 0, "{backend:?} has no connection to sever");
        assert_eq!(clean.0, planned.0);
        assert_eq!(clean.2, planned.2);
    }
}

#[test]
fn severed_pipelines_replay_byte_identically_across_client_counts() {
    use ampc_suite::dds::proto::{Reply, Request, RequestKind};
    use ampc_suite::dds::transport::ClientReply;
    use ampc_suite::dds::{RequestFaults, TcpOptions, TcpTransport, Transport};

    let server = serve(("127.0.0.1", 0)).expect("binding the DDS owner process");
    let addr = server.local_addr();

    let commit = |seq: u64| Request::Commit {
        epoch: 0,
        seq,
        batches: vec![(0, vec![(key(seq), Value::scalar(seq * 7))])],
    };

    // One leased session: pipeline six commits with no reply consumed,
    // (optionally) sever the socket with the whole pipeline outstanding,
    // pipeline six more, then freeze, and report everything observable
    // about the session's store.
    let run_session = |faulted: bool| -> (Vec<(Key, Vec<Value>)>, u64, u64) {
        let options = TcpOptions::fresh().with_topology(1, 1);
        let mut client = TcpTransport::connect_to(addr, 0, options).expect("leasing a session");
        let faults = RequestFaults::none();
        client.install_faults(faults.clone());

        for seq in 0..6 {
            client.send(commit(seq)).unwrap();
        }
        // The seventh commit cuts the connection with all six still
        // unanswered: the reconnect must replay the full pipeline in
        // order, and the dispatch window must re-ack (not re-apply) the
        // prefix the owner already committed.
        if faulted {
            faults.schedule_sever(RequestKind::Commit, 0, 0);
        }
        for seq in 6..12 {
            client.send(commit(seq)).unwrap();
        }
        for seq in 0..12u64 {
            match client.recv().unwrap() {
                ClientReply::Wire(Reply::Committed { epoch, accepted }) => {
                    assert_eq!((epoch, accepted), (0, 1), "ack of commit {seq}");
                }
                _ => panic!("commit {seq} must be acknowledged in FIFO order"),
            }
        }
        client.send(Request::Advance { epoch: 0 }).unwrap();
        let ClientReply::Wire(Reply::Epoch(_)) = client.recv().unwrap() else {
            panic!("advance must publish the frozen epoch");
        };
        client.send(Request::TotalWrites).unwrap();
        let ClientReply::Wire(Reply::TotalWrites(writes)) = client.recv().unwrap() else {
            panic!("total-writes must be answered");
        };
        client.send(Request::Dump { epoch: 0 }).unwrap();
        let ClientReply::Wire(Reply::Dump(mut entries)) = client.recv().unwrap() else {
            panic!("dump must be answered");
        };
        entries.sort_by_key(|&(key, _)| key);
        (entries, writes, faults.severed())
    };

    // Sessions are isolated, so every client (clean or severed, alone or
    // among eight concurrent peers) must observe the identical store.
    let baseline = run_session(false);
    assert_eq!(baseline.1, 12, "twelve commits, one pair each");
    assert_eq!(baseline.2, 0, "fault-free sessions sever nothing");

    for clients in [1usize, 2, 8] {
        let observed: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let run_session = &run_session;
                    scope.spawn(move || (run_session(false), run_session(true)))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().unwrap())
                .collect()
        });
        for (clean, severed) in observed {
            assert_eq!(severed.2, 1, "the mid-pipeline sever must fire");
            assert_eq!(
                (&clean.0, clean.1),
                (&severed.0, severed.1),
                "a severed full pipeline must replay byte-identically ({clients} clients)"
            );
            assert_eq!(
                (&baseline.0, baseline.1),
                (&clean.0, clean.1),
                "concurrent sessions must not bleed ({clients} clients)"
            );
        }
    }
    server.shutdown();
}

#[test]
fn runtimes_serve_rounds_from_an_external_owner_process() {
    let server = serve(("127.0.0.1", 0)).expect("binding the DDS owner process");
    let endpoint = server.local_addr().to_string();

    // The same workload on the in-process local backend and against the
    // external owner process must be byte-identical.
    let local = run_workload(
        AmpcConfig::for_graph(1_000, 1_000, 0.5).with_threads(2),
        FaultPlan::none(),
    );
    let remote = run_workload(
        AmpcConfig::for_graph(1_000, 1_000, 0.5)
            .with_threads(2)
            .with_remote_endpoint(endpoint.clone()),
        FaultPlan::none(),
    );
    assert_eq!(
        (&local.0, &local.1, &local.2, &local.3),
        (&remote.0, &remote.1, &remote.2, &remote.3),
        "external serving must be observationally identical"
    );

    // Mid-round disconnects against the external process heal the same
    // way: reconnect, replay, byte-identical.
    let severed = run_workload(
        AmpcConfig::for_graph(1_000, 1_000, 0.5)
            .with_threads(2)
            .with_remote_endpoint(endpoint.clone()),
        FaultPlan::none().sever_connection(1, 0),
    );
    assert_eq!(severed.4, 1, "the sever must fire against the server");
    assert_eq!(&local.2, &severed.2, "the healed store must match");

    // A full algorithm driver — which derives sub-configs and spawns
    // several runtimes, each with its own leased session — runs unchanged
    // against the owner process.
    let graph = generators::two_cycle_instance(400, true, 42);
    let config = AmpcConfig::for_graph(400, graph.num_edges(), 0.5)
        .with_seed(42)
        .with_remote_endpoint(endpoint);
    let answer = two_cycle_with(&graph, &config);
    assert_eq!(answer.output, TwoCycleAnswer::TwoCycles);

    server.shutdown();
}

#[test]
fn concurrent_runtimes_hold_isolated_sessions_against_one_server() {
    let server = serve(("127.0.0.1", 0)).expect("binding the DDS owner process");
    let endpoint = server.local_addr().to_string();

    // Two concurrent runtimes, same key space, different values: sessions
    // must not bleed into each other.
    let run = |offset: u64, endpoint: String| {
        let config = AmpcConfig::for_graph(500, 500, 0.5)
            .with_threads(2)
            .with_remote_endpoint(endpoint);
        with_dds_backend!(config, |rt| {
            rt.load_input((0..50u64).map(|i| (key(i), Value::scalar(i + offset))));
            rt.run_round(4, |ctx| {
                let id = ctx.machine_id() as u64;
                ctx.read(key(id)).map(|v| v.x)
            })
            .unwrap()
        })
    };
    let (alpha, beta) = std::thread::scope(|scope| {
        let a = scope.spawn(|| run(0, endpoint.clone()));
        let b = scope.spawn(|| run(10_000, endpoint.clone()));
        (a.join().unwrap(), b.join().unwrap())
    });
    assert_eq!(alpha, (0..4u64).map(Some).collect::<Vec<_>>());
    assert_eq!(beta, (10_000..10_004u64).map(Some).collect::<Vec<_>>());
    server.shutdown();
}

//! Cross-backend determinism: the same seed must produce **byte-identical**
//! algorithm outputs whatever DDS backend serves the rounds and however many
//! worker threads execute them.
//!
//! This is the property that makes a networked backend trustworthy at all:
//! if outputs depended on the store implementation or on scheduling, no
//! distributed deployment could be validated against the local runs.  Every
//! algorithm here goes through its `*_with` entry point, so the backend is
//! selected via `AmpcConfig` only — there are no per-algorithm code paths to
//! keep honest.

use ampc_algorithms as algo;
use ampc_graph::{generators, sequential};
use ampc_runtime::{AmpcConfig, DdsBackendKind};

/// Every (backend, threads, cluster owners) execution shape the suite pins
/// down.  `Remote` runs the full algorithm suite over localhost TCP sockets
/// speaking the `ampc_dds::proto` wire format — the acceptance test the
/// ROADMAP set for the networked backend.  `Cluster` shards the same suite
/// across 2 and then 4 standalone owner processes behind the two-phase
/// advance barrier; the owners column is ignored by every other backend.
const SHAPES: &[(DdsBackendKind, usize, usize)] = &[
    (DdsBackendKind::Local, 1, 0),
    (DdsBackendKind::Local, 2, 0),
    (DdsBackendKind::Local, 8, 0),
    (DdsBackendKind::Channel, 1, 0),
    (DdsBackendKind::Channel, 2, 0),
    (DdsBackendKind::Channel, 8, 0),
    (DdsBackendKind::Remote, 1, 0),
    (DdsBackendKind::Remote, 2, 0),
    (DdsBackendKind::Remote, 8, 0),
    (DdsBackendKind::Cluster, 1, 2),
    (DdsBackendKind::Cluster, 2, 2),
    (DdsBackendKind::Cluster, 8, 2),
    (DdsBackendKind::Cluster, 1, 4),
    (DdsBackendKind::Cluster, 2, 4),
    (DdsBackendKind::Cluster, 8, 4),
];

fn config_for(
    n: usize,
    m: usize,
    seed: u64,
    backend: DdsBackendKind,
    threads: usize,
    owners: usize,
) -> AmpcConfig {
    let config = AmpcConfig::for_graph(n.max(1), m, 0.5)
        .with_seed(seed)
        .with_backend(backend)
        .with_threads(threads);
    if backend == DdsBackendKind::Cluster {
        config
            .with_cluster_owners(owners)
            .expect("shape owner counts are in range")
    } else {
        config
    }
}

/// Run `f` under every shape and assert all outputs equal the first.
fn assert_deterministic<T: PartialEq + std::fmt::Debug>(
    label: &str,
    f: impl Fn(DdsBackendKind, usize, usize) -> T,
) {
    let (first_backend, first_threads, first_owners) = SHAPES[0];
    let reference = f(first_backend, first_threads, first_owners);
    for &(backend, threads, owners) in &SHAPES[1..] {
        let output = f(backend, threads, owners);
        assert_eq!(
            output, reference,
            "{label}: output diverged on {backend:?} with {threads} threads \
             ({owners} owners)"
        );
    }
}

#[test]
fn connectivity_labels_are_identical_across_backends_and_threads() {
    let g = generators::planted_components(300, 5, 3, 7);
    assert_deterministic("connectivity", |backend, threads, owners| {
        let result = algo::connectivity_with(
            &g,
            &config_for(300, g.num_edges(), 7, backend, threads, owners),
        );
        result.output
    });
    // And the reference shape is actually correct.
    let local = algo::connectivity(&g, 0.5, 7);
    assert_eq!(local.output, sequential::connected_components(&g));
}

#[test]
fn mis_membership_is_identical_across_backends_and_threads() {
    let g = generators::erdos_renyi_gnm(250, 900, 3);
    assert_deterministic("mis", |backend, threads, owners| {
        algo::maximal_independent_set_with(&g, &config_for(250, 900, 3, backend, threads, owners))
            .output
    });
}

#[test]
fn list_ranks_are_identical_across_backends_and_threads() {
    // A shuffled single list plus a couple of short ones.
    let successor: Vec<u32> = {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = 600usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(&mut rng);
        let mut successor = vec![0u32; n];
        for i in 0..n - 1 {
            successor[order[i] as usize] = order[i + 1];
        }
        successor[order[n - 1] as usize] = order[n - 1];
        successor
    };
    assert_deterministic("list_ranking", |backend, threads, owners| {
        algo::list_ranking_with(
            &successor,
            &config_for(
                successor.len(),
                successor.len(),
                5,
                backend,
                threads,
                owners,
            ),
        )
        .output
    });
    assert_eq!(
        algo::list_ranking(&successor, 0.5, 5).output,
        sequential::sequential_list_ranks(&successor)
    );
}

#[test]
fn msf_edge_set_is_identical_across_backends_and_threads() {
    let base = generators::connected_gnm(200, 600, 9);
    let g = generators::with_random_weights(&base, 1009);
    assert_deterministic("msf", |backend, threads, owners| {
        let result = algo::minimum_spanning_forest_with(
            &g,
            &config_for(200, 600, 9, backend, threads, owners),
        );
        (
            result.output.edges,
            result.output.total_weight,
            result.output.labels,
        )
    });
}

#[test]
fn two_cycle_and_cycle_connectivity_run_on_every_shape() {
    let one = generators::two_cycle_instance(400, false, 2);
    let two = generators::two_cycle_instance(400, true, 2);
    assert_deterministic("two_cycle", |backend, threads, owners| {
        (
            algo::two_cycle_with(&one, &config_for(400, 400, 2, backend, threads, owners)).output,
            algo::two_cycle_with(&two, &config_for(400, 400, 2, backend, threads, owners)).output,
        )
    });
    let cycles = generators::two_cycles(240);
    assert_deterministic("cycle_connectivity", |backend, threads, owners| {
        algo::cycle_connectivity_with(&cycles, &config_for(240, 240, 2, backend, threads, owners))
            .output
    });
}

#[test]
fn forest_and_euler_pipelines_run_on_every_shape() {
    let forest = generators::random_forest(250, 8, 4);
    assert_deterministic("forest_connectivity", |backend, threads, owners| {
        algo::forest_connectivity_with(&forest, &config_for(250, 250, 4, backend, threads, owners))
            .output
    });
    let tree = generators::random_tree(180, 6);
    assert_deterministic("root_forest", |backend, threads, owners| {
        let rooted = algo::root_forest_with(
            &tree,
            None,
            &config_for(180, 360, 6, backend, threads, owners),
        )
        .output;
        (rooted.parent, rooted.preorder, rooted.subtree_size)
    });
}

#[test]
fn two_edge_connectivity_runs_on_every_shape() {
    let g = generators::bridged_blocks(5, 4, 2, 8);
    assert_deterministic("two_edge_connectivity", |backend, threads, owners| {
        let result = algo::two_edge_connectivity_with(
            &g,
            &config_for(g.num_vertices(), g.num_edges(), 8, backend, threads, owners),
        )
        .output;
        (
            result.bridges,
            result.two_edge_components,
            result.connectivity,
        )
    });
    // The channel-backend output is pinned to the sequential reference too.
    let via_channel = algo::two_edge_connectivity_with(
        &g,
        &config_for(
            g.num_vertices(),
            g.num_edges(),
            8,
            DdsBackendKind::Channel,
            2,
            0,
        ),
    );
    assert_eq!(via_channel.output.bridges, sequential::bridges(&g));
    assert_eq!(
        via_channel.output.two_edge_components,
        sequential::two_edge_connected_components(&g)
    );
}

#[test]
fn round_and_query_statistics_match_across_backends() {
    // Not just outputs: the recorded round structure (rounds, queries,
    // writes, per-machine maxima) is part of what the paper's theorems
    // bound, and it must not depend on the store implementation.
    let g = generators::connected_gnm(200, 700, 12);
    let stats_of = |backend: DdsBackendKind, owners: usize| {
        let result = algo::connectivity_with(&g, &config_for(200, 700, 12, backend, 2, owners));
        result
            .stats
            .rounds
            .iter()
            .map(|r| {
                (
                    r.round,
                    r.machines,
                    r.total_queries,
                    r.max_queries_per_machine,
                    r.total_writes,
                    r.max_writes_per_machine,
                    r.budget_violations,
                )
            })
            .collect::<Vec<_>>()
    };
    let reference = stats_of(DdsBackendKind::Local, 0);
    assert_eq!(reference, stats_of(DdsBackendKind::Channel, 0));
    assert_eq!(reference, stats_of(DdsBackendKind::Remote, 0));
    assert_eq!(reference, stats_of(DdsBackendKind::Cluster, 2));
    assert_eq!(reference, stats_of(DdsBackendKind::Cluster, 4));
}

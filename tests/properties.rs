//! Property-based tests (proptest): the AMPC algorithms agree with the
//! sequential references on randomly generated workloads, and the core data
//! structures maintain their invariants under arbitrary operation sequences.

use ampc_suite::dds::{Key, KeyTag, ShardedStore, Value};
use ampc_suite::prelude::*;
use proptest::prelude::*;

const EPSILON: f64 = 0.5;

/// Strategy: an arbitrary small undirected graph given as (n, edge pairs).
fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (2usize..60).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_edges.min(150)).prop_map(
            move |pairs| {
                let edges: Vec<Edge> = pairs.into_iter().map(|(u, v)| Edge::new(u, v)).collect();
                Graph::from_edges(n, &edges)
            },
        )
    })
}

/// Strategy: a random forest described by (n, number of trees, seed).
fn arbitrary_forest() -> impl Strategy<Value = Graph> {
    (2usize..80, 1usize..6, 0u64..1000).prop_map(|(n, trees, seed)| {
        let trees = trees.min(n);
        generators::random_forest(n, trees, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn ampc_connectivity_equals_union_find(graph in arbitrary_graph(), seed in 0u64..1000) {
        let result = connectivity(&graph, EPSILON, seed);
        prop_assert_eq!(result.output, sequential::connected_components(&graph));
    }

    #[test]
    fn ampc_mis_is_maximal_and_independent(graph in arbitrary_graph(), seed in 0u64..1000) {
        let result = maximal_independent_set(&graph, EPSILON, seed);
        prop_assert!(sequential::is_maximal_independent_set(&graph, &result.output));
    }

    #[test]
    fn ampc_spanning_forest_weight_is_minimal(graph in arbitrary_graph(), seed in 0u64..1000) {
        let weighted = generators::with_random_weights(&graph, seed);
        let result = minimum_spanning_forest(&weighted, EPSILON, seed);
        let (_, kruskal_weight) = sequential::kruskal_msf(&weighted);
        prop_assert_eq!(result.output.total_weight, kruskal_weight);
        // The returned edge set is acyclic and spans every component.
        let mut uf = ampc_suite::graph::UnionFind::new(weighted.num_vertices());
        for e in &result.output.edges {
            prop_assert!(uf.union(e.u, e.v));
        }
        prop_assert_eq!(uf.num_components(), sequential::count_components(&weighted));
    }

    #[test]
    fn ampc_bridges_equal_dfs_bridges(graph in arbitrary_graph(), seed in 0u64..1000) {
        let result = two_edge_connectivity(&graph, EPSILON, seed);
        prop_assert_eq!(result.output.bridges, sequential::bridges(&graph));
        prop_assert_eq!(
            result.output.two_edge_components,
            sequential::two_edge_connected_components(&graph)
        );
    }

    #[test]
    fn forest_connectivity_equals_union_find(forest in arbitrary_forest(), seed in 0u64..1000) {
        let result = forest_connectivity(&forest, EPSILON, seed);
        prop_assert_eq!(result.output, sequential::connected_components(&forest));
    }

    #[test]
    fn rooted_forest_invariants(forest in arbitrary_forest(), seed in 0u64..1000) {
        let n = forest.num_vertices();
        let rooted = root_forest(&forest, None, EPSILON, seed).output;
        let components = sequential::connected_components(&forest);
        // Preorder is a permutation of 0..n.
        let mut sorted = rooted.preorder.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as u64).collect::<Vec<_>>());
        // Parents stay in the component, roots are the component minima, and
        // subtree sizes are consistent with the parent structure.
        let mut child_size_sum = vec![0u64; n];
        for v in 0..n as u32 {
            let p = rooted.parent[v as usize];
            prop_assert_eq!(components[v as usize], components[p as usize]);
            if p == v {
                prop_assert_eq!(v, components[v as usize]);
            } else {
                prop_assert!(rooted.preorder[p as usize] < rooted.preorder[v as usize]);
                child_size_sum[p as usize] += rooted.subtree_size[v as usize];
            }
        }
        for (size, child_sum) in rooted.subtree_size.iter().zip(&child_size_sum) {
            prop_assert_eq!(*size, child_sum + 1);
        }
    }

    #[test]
    fn list_ranking_equals_position(perm_seed in 0u64..10_000, len in 2usize..400, seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        let mut order: Vec<u32> = (0..len as u32).collect();
        order.shuffle(&mut rng);
        let mut successor = vec![0u32; len];
        for i in 0..len - 1 {
            successor[order[i] as usize] = order[i + 1];
        }
        successor[order[len - 1] as usize] = order[len - 1];
        let result = list_ranking(&successor, EPSILON, seed);
        prop_assert_eq!(result.output, sequential::sequential_list_ranks(&successor));
    }

    #[test]
    fn two_cycle_never_misclassifies(n in 4usize..400, two in any::<bool>(), seed in 0u64..1000) {
        let n = (n / 2) * 2 + 6; // even, ≥ 6 so both instances exist
        let graph = generators::two_cycle_instance(n, two, seed);
        let result = two_cycle(&graph, EPSILON, seed);
        prop_assert_eq!(matches!(result.output, TwoCycleAnswer::TwoCycles), two);
    }

    #[test]
    fn dds_store_preserves_all_writes(
        writes in proptest::collection::vec((0u64..500, 0u64..1_000_000), 1..300),
        shards in 1usize..32
    ) {
        let store = ShardedStore::new(shards);
        for &(k, v) in &writes {
            store.write(Key::of(KeyTag::Scalar, k), Value::scalar(v));
        }
        let snapshot = store.freeze();
        // Every key holds exactly the values written to it, in write order.
        let mut expected: std::collections::HashMap<u64, Vec<u64>> = std::collections::HashMap::new();
        for &(k, v) in &writes {
            expected.entry(k).or_default().push(v);
        }
        for (k, values) in expected {
            let key = Key::of(KeyTag::Scalar, k);
            prop_assert_eq!(snapshot.multiplicity(&key), values.len());
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(snapshot.get_indexed(&key, i), Some(Value::scalar(v)));
            }
        }
        prop_assert_eq!(snapshot.stats().total_writes, writes.len() as u64);
    }

    #[test]
    fn canonical_labels_are_invariant_under_renaming(
        labels in proptest::collection::vec(0u32..20, 1..100),
        offset in 1u32..1000
    ) {
        use ampc_suite::graph::canonicalize_labels;
        let renamed: Vec<u32> = labels.iter().map(|&l| l * 7 + offset).collect();
        prop_assert_eq!(canonicalize_labels(&labels), canonicalize_labels(&renamed));
    }
}

//! Cross-backend conformance suite for the DDS trait pair.
//!
//! One parameterized battery drives `LocalBackend`, `ChannelBackend`,
//! `TcpBackend` (the socket-backed `RemoteBackend` speaking the
//! `ampc_dds::proto` wire format) and the executable specification
//! `legacy::LegacyStore` through the same write scripts and holds every
//! observable — `get`, `get_indexed`, `multiplicity`, `len`, `read_many`
//! (order and content), multi-value index order, and the per-query read
//! accounting — to identical results.  The property tests at the bottom
//! extend the battery to arbitrary write interleavings.

use ampc_dds::legacy::LegacyStore;
use ampc_dds::{
    ChannelBackend, ClusterBackend, DdsBackend, Key, KeyTag, LocalBackend, SnapshotView,
    TcpBackend, Value,
};
use ampc_runtime::{AmpcConfig, AmpcRuntime, DdsBackendKind};
use proptest::prelude::*;

/// Every backend kind the runtime-level batteries cover.
const ALL_BACKENDS: &[DdsBackendKind] = &[
    DdsBackendKind::Local,
    DdsBackendKind::Channel,
    DdsBackendKind::Remote,
    DdsBackendKind::Cluster,
];

/// One round's writes: ordered batches (for the runtime: one per machine).
type Script = Vec<Vec<Vec<(Key, Value)>>>;

fn k(a: u64) -> Key {
    Key::of(KeyTag::Scalar, a)
}

/// Apply every epoch of `script` to a backend, returning one view per epoch.
fn run_script<B: DdsBackend>(script: &Script, shards: usize, threads: usize) -> Vec<B::View> {
    let mut backend = B::with_shards(shards, threads);
    script
        .iter()
        .map(|batches| {
            backend.commit_round(batches.clone(), threads);
            backend.advance(threads)
        })
        .collect()
}

/// Apply one epoch's batches to a fresh legacy store (the spec is
/// single-epoch: each round starts empty, exactly like a fresh `D_i`).
fn legacy_epochs(script: &Script, shards: usize) -> Vec<LegacyStore> {
    script
        .iter()
        .map(|batches| {
            let mut store = LegacyStore::new(shards);
            for batch in batches {
                for &(key, value) in batch {
                    store.write(key, value);
                }
            }
            store
        })
        .collect()
}

/// The conformance battery: every observable of `view` must match the
/// legacy spec for the keys in `probe`, and batched reads must match point
/// reads (content, order, and query accounting).
fn assert_view_matches_legacy<V: SnapshotView>(view: &V, legacy: &LegacyStore, probe: &[Key]) {
    assert_eq!(view.len(), legacy.len());
    assert_eq!(view.is_empty(), legacy.is_empty());

    let reads_before = view.total_reads();
    let mut issued = 0u64;
    for key in probe {
        assert_eq!(view.get(key), legacy.get(key), "get({key})");
        issued += 1;
        let multiplicity = legacy.multiplicity(key);
        assert_eq!(view.multiplicity(key), multiplicity, "multiplicity({key})");
        issued += 1;
        // Multi-value index order: every index, plus one past the end.
        for index in 0..=multiplicity {
            assert_eq!(
                view.get_indexed(key, index),
                legacy.get_indexed(key, index),
                "get_indexed({key}, {index})"
            );
            issued += 1;
        }
    }

    // Batched lookups: one entry per key, in key order, counted per key.
    let mut batched = Vec::new();
    view.get_many(probe, &mut batched);
    let individual: Vec<Option<Value>> = probe.iter().map(|key| legacy.get(key)).collect();
    assert_eq!(batched, individual, "get_many order/content");
    issued += probe.len() as u64;

    // Query accounting: every probe above debited exactly one query (the
    // legacy spec predates read counters, so the ledger is checked on the
    // view itself — identically for every backend).
    assert_eq!(
        view.total_reads() - reads_before,
        issued,
        "read accounting must debit one query per lookup"
    );
}

/// Run the full battery for one script on all four backends.
fn conformance_battery(script: Script, shards: usize, threads: usize) {
    // Probe keys: everything ever written plus guaranteed misses.
    let mut probe: Vec<Key> = script
        .iter()
        .flatten()
        .flatten()
        .map(|&(key, _)| key)
        .collect();
    probe.push(Key::of(KeyTag::Custom(999), u64::MAX));
    probe.push(k(u64::MAX - 1));

    let local = run_script::<LocalBackend>(&script, shards, threads);
    let channel = run_script::<ChannelBackend>(&script, shards, threads);
    let remote = run_script::<TcpBackend>(&script, shards, threads);
    let cluster2 = run_script::<ClusterBackend<2>>(&script, shards, threads);
    let cluster4 = run_script::<ClusterBackend<4>>(&script, shards, threads);
    let legacy = legacy_epochs(&script, shards);

    assert_eq!(local.len(), legacy.len());
    assert_eq!(channel.len(), legacy.len());
    assert_eq!(remote.len(), legacy.len());
    assert_eq!(cluster2.len(), legacy.len());
    assert_eq!(cluster4.len(), legacy.len());
    for epoch in 0..legacy.len() {
        assert_view_matches_legacy(&local[epoch], &legacy[epoch], &probe);
        assert_view_matches_legacy(&channel[epoch], &legacy[epoch], &probe);
        assert_view_matches_legacy(&remote[epoch], &legacy[epoch], &probe);
        assert_view_matches_legacy(&cluster2[epoch], &legacy[epoch], &probe);
        assert_view_matches_legacy(&cluster4[epoch], &legacy[epoch], &probe);
        // The trait backends also agree on the unordered entry dump.
        let mut local_entries = local[epoch].entries();
        let mut channel_entries = channel[epoch].entries();
        let mut remote_entries = remote[epoch].entries();
        let mut cluster2_entries = cluster2[epoch].entries();
        let mut cluster4_entries = cluster4[epoch].entries();
        local_entries.sort_by_key(|&(key, _)| key);
        channel_entries.sort_by_key(|&(key, _)| key);
        remote_entries.sort_by_key(|&(key, _)| key);
        cluster2_entries.sort_by_key(|&(key, _)| key);
        cluster4_entries.sort_by_key(|&(key, _)| key);
        assert_eq!(local_entries, channel_entries, "epoch {epoch} entries");
        assert_eq!(
            local_entries, remote_entries,
            "epoch {epoch} remote entries"
        );
        assert_eq!(
            local_entries, cluster2_entries,
            "epoch {epoch} cluster(2) entries"
        );
        assert_eq!(
            local_entries, cluster4_entries,
            "epoch {epoch} cluster(4) entries"
        );
    }
}

#[test]
fn battery_single_epoch_singletons_and_multivalues() {
    let script: Script = vec![vec![
        (0..200u64).map(|i| (k(i % 60), Value::scalar(i))).collect(),
        (0..40u64).map(|i| (k(i), Value::pair(i, i * 2))).collect(),
    ]];
    for &(shards, threads) in &[(1usize, 1usize), (8, 2), (16, 4), (64, 3)] {
        conformance_battery(script.clone(), shards, threads);
    }
}

#[test]
fn battery_multi_epoch_isolation() {
    let script: Script = vec![
        vec![(0..50u64).map(|i| (k(i), Value::scalar(i))).collect()],
        vec![(25..75u64)
            .map(|i| (k(i), Value::scalar(i + 1000)))
            .collect()],
        vec![Vec::new()], // an empty round is a valid epoch
        vec![(0..10u64).map(|_| (k(7), Value::scalar(7))).collect()],
    ];
    conformance_battery(script, 8, 2);
}

#[test]
fn battery_machine_order_defines_multivalue_indices() {
    // 16 "machines" all writing the same hot keys: index order must be
    // (machine id, write order) on every backend.
    let script: Script = vec![(0..16u64)
        .map(|machine| {
            (0..8u64)
                .map(|i| (k(i % 4), Value::scalar(machine * 100 + i)))
                .collect()
        })
        .collect()];
    for &threads in &[1usize, 2, 8] {
        conformance_battery(script.clone(), 8, threads);
    }
}

#[test]
fn battery_covers_every_key_tag() {
    let tags = [
        KeyTag::Degree,
        KeyTag::Adjacency,
        KeyTag::CycleNeighbors,
        KeyTag::Sampled,
        KeyTag::Priority,
        KeyTag::Successor,
        KeyTag::Weight,
        KeyTag::WeightedAdjacency,
        KeyTag::Scalar,
        KeyTag::Custom(3),
    ];
    let script: Script = vec![vec![tags
        .iter()
        .enumerate()
        .flat_map(|(i, &tag)| {
            let key = Key::with_index(tag, i as u64, (i as u64) % 3);
            vec![(key, Value::scalar(i as u64)), (key, Value::pair(1, 2))]
        })
        .collect()]];
    conformance_battery(script, 8, 2);
}

#[test]
fn machine_context_budget_accounting_is_backend_independent() {
    // The runtime-level half of the query-budget battery: the same round
    // body must debit identical budgets (queries, violations) on every
    // backend, including through read_many.
    let run = |backend: &DdsBackendKind| {
        let config = AmpcConfig::for_graph(400, 400, 0.5)
            .with_seed(11)
            .with_threads(2)
            .with_backend(*backend);
        ampc_runtime::with_dds_backend!(config, |rt| {
            rt.load_input((0..100u64).map(|i| (k(i), Value::scalar(i))));
            rt.run_round(4, |ctx| {
                let id = ctx.machine_id() as u64;
                let single = ctx.read(k(id)).map(|v| v.x);
                let keys: Vec<Key> = (0..10u64).map(|i| k(id * 10 + i)).collect();
                let batch: Vec<Option<u64>> = ctx
                    .read_many(&keys)
                    .into_iter()
                    .map(|v| v.map(|v| v.x))
                    .collect();
                let indexed = ctx.read_indexed(k(id), 0).map(|v| v.x);
                let mult = ctx.multiplicity(k(id));
                (
                    single,
                    batch,
                    indexed,
                    mult,
                    ctx.queries_issued(),
                    ctx.remaining_budget(),
                )
            })
            .unwrap()
        })
    };
    let reference = run(&DdsBackendKind::Local);
    for backend in &ALL_BACKENDS[1..] {
        assert_eq!(run(backend), reference, "budgets diverged on {backend:?}");
    }
}

#[test]
fn explicit_shard_override_flows_to_every_backend() {
    for &backend in ALL_BACKENDS {
        let config = AmpcConfig::for_graph(100, 100, 0.5)
            .with_backend(backend)
            .with_num_shards(13)
            .unwrap();
        ampc_runtime::with_dds_backend!(config, |rt| {
            rt.load_input((0..10u64).map(|i| (k(i), Value::scalar(i))));
            assert_eq!(rt.snapshot().num_shards(), 13);
        });
    }
}

/// End-to-end smoke through `AmpcRuntime<B>` directly (not via the macro):
/// adaptive pointer chasing, exactly as the model demands.
fn runtime_program_smoke<B: DdsBackend>() {
    let config = AmpcConfig::for_graph(10_000, 0, 0.5).with_threads(3);
    let mut runtime = AmpcRuntime::<B>::with_backend(config);
    runtime.load_input((0..100u64).map(|x| (Key::of(KeyTag::Successor, x), Value::scalar(x + 1))));
    let reached = runtime
        .run_round(1, |ctx| {
            let mut x = 0u64;
            for _ in 0..50 {
                x = ctx.read(Key::of(KeyTag::Successor, x)).unwrap().x;
            }
            x
        })
        .unwrap();
    assert_eq!(reached, vec![50]);
    assert_eq!(runtime.stats().rounds[0].total_queries, 50);
}

#[test]
fn channel_backend_runs_a_full_runtime_program() {
    runtime_program_smoke::<ChannelBackend>();
}

#[test]
fn tcp_backend_runs_a_full_runtime_program() {
    runtime_program_smoke::<TcpBackend>();
}

#[test]
fn cluster_backend_runs_a_full_runtime_program() {
    runtime_program_smoke::<ClusterBackend<2>>();
}

/// Everything a view can tell us about an epoch: key count, sorted entry
/// dump, and the flattened results of every probe lookup.
type EpochObservation = (usize, Vec<(Key, Vec<Value>)>, Vec<u64>);

/// Capture an [`EpochObservation`] for byte-equality checks across the
/// epoch's lifetime (minus read counters, which by design keep advancing as
/// we re-probe).
fn observe<V: SnapshotView>(view: &V, probe: &[Key]) -> EpochObservation {
    let mut entries = view.entries();
    entries.sort_by_key(|&(key, _)| key);
    let mut observations = Vec::new();
    for key in probe {
        observations.push(view.get(key).map_or(u64::MAX, |v| v.x));
        observations.push(view.multiplicity(key) as u64);
        for index in 0..=view.multiplicity(key) {
            observations.push(view.get_indexed(key, index).map_or(u64::MAX, |v| v.x));
        }
    }
    let mut batched = Vec::new();
    view.get_many(probe, &mut batched);
    observations.extend(batched.iter().map(|v| v.map_or(u64::MAX, |v| v.x)));
    (view.len(), entries, observations)
}

/// Snapshot lifetime: a view taken at one epoch must stay valid — and
/// byte-identical — while later epochs commit and advance, and after the
/// backend itself is dropped.
fn snapshot_lifetime_battery<B: DdsBackend>(shards: usize, threads: usize) {
    let mut backend = B::with_shards(shards, threads);
    backend.commit_round(
        vec![
            (0..120u64).map(|i| (k(i % 40), Value::scalar(i))).collect(),
            (0..20u64).map(|i| (k(i), Value::pair(i, i * 9))).collect(),
        ],
        threads,
    );
    let early = backend.advance(threads);
    let probe: Vec<Key> = (0..50u64).map(k).collect();
    let baseline = observe(&early, &probe);
    assert!(baseline.0 > 0, "epoch 0 must hold data");

    // Later epochs overwrite the same keys with different values; the early
    // view must not see any of it.
    for round in 0..3u64 {
        backend.commit_round(
            vec![(0..60u64)
                .map(|i| (k(i), Value::scalar(1_000_000 + round * 1_000 + i)))
                .collect()],
            threads,
        );
        let _ = backend.advance(threads);
        assert_eq!(
            observe(&early, &probe),
            baseline,
            "early view changed after advance {round}"
        );
    }

    // The backend (and with it the runtime that owned it) goes away; the
    // view must keep serving the identical epoch.
    drop(backend);
    assert_eq!(
        observe(&early, &probe),
        baseline,
        "early view changed after the backend was dropped"
    );
}

#[test]
fn local_views_stay_valid_across_epochs_and_backend_drop() {
    snapshot_lifetime_battery::<LocalBackend>(8, 2);
    snapshot_lifetime_battery::<LocalBackend>(1, 1);
}

#[test]
fn channel_views_stay_valid_across_epochs_and_backend_drop() {
    snapshot_lifetime_battery::<ChannelBackend>(8, 3);
    snapshot_lifetime_battery::<ChannelBackend>(16, 1);
}

#[test]
fn tcp_views_stay_valid_across_epochs_and_backend_drop() {
    snapshot_lifetime_battery::<TcpBackend>(8, 3);
    snapshot_lifetime_battery::<TcpBackend>(16, 1);
}

#[test]
fn cluster_views_stay_valid_across_epochs_and_backend_drop() {
    snapshot_lifetime_battery::<ClusterBackend<2>>(8, 3);
    snapshot_lifetime_battery::<ClusterBackend<4>>(16, 1);
}

fn arbitrary_key() -> impl Strategy<Value = Key> {
    (0u32..6, 0u64..40, 0u64..4).prop_map(|(tag, a, b)| Key {
        tag: KeyTag::from_code(tag),
        a,
        b,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Observational equivalence of all three backends under arbitrary
    /// write interleavings: any number of epochs, any number of machine
    /// batches per epoch, colliding keys across tags, any shard/thread
    /// shape.
    #[test]
    fn backends_are_observationally_equivalent_under_arbitrary_interleavings(
        script in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec((arbitrary_key(), any::<u64>()), 0..30),
                1..5
            ),
            1..4
        ),
        shards in 1usize..33,
        threads in 1usize..5
    ) {
        let script: Script = script
            .into_iter()
            .map(|epoch| {
                epoch
                    .into_iter()
                    .map(|batch| {
                        batch.into_iter().map(|(key, x)| (key, Value::scalar(x))).collect()
                    })
                    .collect()
            })
            .collect();
        conformance_battery(script, shards, threads);
    }
}

//! Integration tests for the *model semantics* of the AMPC runtime: the
//! properties Section 2 of the paper defines (adaptive reads, the
//! read-previous / write-next epoch discipline, `O(S)` budgets, contention
//! behaviour and fault tolerance), exercised through the public API.

use ampc_suite::dds::{Key, KeyTag, Value};
use ampc_suite::prelude::*;

fn key(tag: KeyTag, x: u64) -> Key {
    Key::of(tag, x)
}

#[test]
fn adaptivity_computes_g_to_the_k_in_one_round() {
    // Section 2: "if g is a function from X to X ... a machine can compute
    // g^k(y) in a single round, provided that k = O(S)".
    let config = AmpcConfig::for_graph(10_000, 0, 0.5);
    let mut rt = AmpcRuntime::new(config);
    // g(x) = 3x + 1 mod 1000, tabulated.
    rt.load_input(
        (0..1_000u64).map(|x| (key(KeyTag::Scalar, x), Value::scalar((3 * x + 1) % 1_000))),
    );
    let k = 80usize;
    let results = rt
        .run_round(1, |ctx| {
            let mut x = 7u64;
            for _ in 0..k {
                x = ctx.read(key(KeyTag::Scalar, x)).unwrap().x;
            }
            x
        })
        .unwrap();
    // Sequential ground truth.
    let mut expected = 7u64;
    for _ in 0..k {
        expected = (3 * expected + 1) % 1_000;
    }
    assert_eq!(results, vec![expected]);
    assert_eq!(rt.stats().num_rounds(), 1);
    assert_eq!(rt.stats().rounds[0].total_queries, k as u64);
}

#[test]
fn writes_of_a_round_are_invisible_until_the_next_round() {
    let config = AmpcConfig::for_graph(1_000, 0, 0.5);
    let mut rt = AmpcRuntime::new(config.clone());
    rt.load_input(std::iter::empty());

    // Round 0: every machine writes a marker and tries to read every other
    // machine's marker — all reads must miss.
    let missed = rt
        .run_round(8, |ctx| {
            ctx.write(
                key(KeyTag::Scalar, ctx.machine_id() as u64),
                Value::scalar(1),
            );
            (0..8u64)
                .filter(|&m| ctx.read(key(KeyTag::Scalar, m)).is_none())
                .count()
        })
        .unwrap();
    assert!(missed.iter().all(|&misses| misses == 8));

    // Round 1: all markers are now visible.
    let seen = rt
        .run_round(8, |ctx| {
            (0..8u64)
                .filter(|&m| ctx.read(key(KeyTag::Scalar, m)).is_some())
                .count()
        })
        .unwrap();
    assert!(seen.iter().all(|&hits| hits == 8));
}

#[test]
fn query_accounting_matches_the_model_cost_measure() {
    // "The amount of communication that a machine performs per round is
    // equal to the total number of queries and writes."
    let config = AmpcConfig::for_graph(10_000, 0, 0.5);
    let mut rt = AmpcRuntime::new(config);
    rt.load_input((0..100u64).map(|x| (key(KeyTag::Scalar, x), Value::scalar(x))));
    rt.run_round(4, |ctx| {
        let id = ctx.machine_id() as u64;
        for i in 0..(id + 1) * 5 {
            let _ = ctx.read(key(KeyTag::Scalar, i % 100));
        }
        for i in 0..(id + 1) * 3 {
            ctx.write(key(KeyTag::Scalar, 1_000 + id * 100 + i), Value::scalar(i));
        }
    })
    .unwrap();
    let round = &rt.stats().rounds[0];
    assert_eq!(round.total_queries, 5 + 10 + 15 + 20);
    assert_eq!(round.total_writes, 3 + 6 + 9 + 12);
    assert_eq!(round.max_queries_per_machine, 20);
    assert_eq!(round.max_writes_per_machine, 12);
    assert_eq!(round.communication(), 50 + 30);
}

#[test]
fn strict_budgets_reject_machines_that_exceed_o_of_s() {
    let config = AmpcConfig::for_graph(400, 400, 0.5) // S = 20
        .with_budget_factor(1.0)
        .with_budget_mode(BudgetMode::Strict);
    let mut rt = AmpcRuntime::new(config);
    rt.load_input((0..400u64).map(|x| (key(KeyTag::Scalar, x), Value::scalar(x))));
    let err = rt
        .run_round(2, |ctx| {
            for i in 0..100u64 {
                let _ = ctx.read(key(KeyTag::Scalar, i));
            }
        })
        .unwrap_err();
    assert!(matches!(
        err,
        ampc_suite::runtime::AmpcError::BudgetExceeded { .. }
    ));
}

#[test]
fn per_machine_load_on_the_dds_stays_balanced() {
    // Contention (Section 2.1 / Lemma 2.1): with keys hashed uniformly over
    // shards, no shard serves disproportionately many of the reads.
    let config = AmpcConfig::for_graph(100_000, 100_000, 0.5);
    let mut rt = AmpcRuntime::new(config.clone());
    rt.load_input((0..50_000u64).map(|x| (key(KeyTag::Scalar, x), Value::scalar(x))));
    rt.run_round(64, |ctx| {
        let base = ctx.machine_id() as u64 * 700;
        for i in 0..700u64 {
            let _ = ctx.read(key(KeyTag::Scalar, (base + i) % 50_000));
        }
    })
    .unwrap();
    let stats = rt.snapshot().stats();
    // ~44800 reads over 256 shards ⇒ mean ≈ 175; the max shard should stay
    // within a small constant factor of that.
    assert!(stats.imbalance() < 2.0, "imbalance = {}", stats.imbalance());
}

#[test]
fn every_algorithm_reports_zero_budget_violations_on_default_workloads() {
    // The theorems bound per-machine communication by O(S); with the default
    // budget factor the algorithms should never trip the recorder.
    let graph = generators::planted_components(4_000, 8, 1_500, 3);
    assert_eq!(connectivity(&graph, 0.5, 3).stats.budget_violations(), 0);

    let cycle = generators::two_cycle_instance(4_096, false, 3);
    assert_eq!(two_cycle(&cycle, 0.5, 3).stats.budget_violations(), 0);

    let forest = generators::random_forest(4_000, 8, 3);
    assert_eq!(
        forest_connectivity(&forest, 0.5, 3)
            .stats
            .budget_violations(),
        0
    );
}

#[test]
fn mpc_simulation_inside_ampc_costs_the_same_rounds() {
    // "It is easy to simulate every MPC algorithm in the AMPC model": send a
    // message to machine x by writing a pair keyed by x, read your inbox the
    // next round.  Two supersteps of a toy MPC program = two AMPC rounds.
    let config = AmpcConfig::for_graph(1_000, 0, 0.5);
    let mut rt = AmpcRuntime::new(config);
    rt.load_input(std::iter::empty());
    let machines = 16usize;

    // Superstep 1: machine i sends its id to machine (i + 1) % P.
    rt.run_round(machines, |ctx| {
        let dest = ((ctx.machine_id() + 1) % machines) as u64;
        ctx.write(
            key(KeyTag::Custom(1), dest),
            Value::scalar(ctx.machine_id() as u64),
        );
    })
    .unwrap();
    // Superstep 2: every machine reads its inbox.
    let inboxes = rt
        .run_round(machines, |ctx| {
            ctx.read(key(KeyTag::Custom(1), ctx.machine_id() as u64))
                .map(|v| v.x)
        })
        .unwrap();
    for (i, inbox) in inboxes.iter().enumerate() {
        assert_eq!(*inbox, Some(((i + machines - 1) % machines) as u64));
    }
    assert_eq!(rt.stats().num_rounds(), 2);
}

//! Cross-crate integration tests: every AMPC algorithm, exercised through
//! the public `ampc_suite` API on non-trivial workloads and checked against
//! the sequential reference implementations and the MPC baselines.

use ampc_suite::prelude::*;
use ampc_suite::runtime::FaultPlan;

const EPSILON: f64 = 0.5;

#[test]
fn two_cycle_agrees_with_mpc_baseline_on_both_instances() {
    for &(n, two) in &[
        (1_000usize, false),
        (1_000, true),
        (4_096, false),
        (4_096, true),
    ] {
        let graph = generators::two_cycle_instance(n, two, 21);
        let ampc = two_cycle(&graph, EPSILON, 21);
        let (mpc_answer, mpc_stats) = ampc_suite::mpc::two_cycle_mpc(&graph, 64);
        let expected_two = matches!(ampc.output, TwoCycleAnswer::TwoCycles);
        assert_eq!(expected_two, two);
        assert_eq!(
            matches!(mpc_answer, ampc_suite::mpc::TwoCycleAnswer::TwoCycles),
            two
        );
        // The AMPC/MPC round-count gap that refutes the 2-Cycle conjecture.
        assert!(ampc.rounds() < mpc_stats.num_rounds() + 10);
    }
}

#[test]
fn connectivity_stack_agrees_across_models_and_references() {
    let graph = generators::planted_components(3_000, 9, 400, 33);
    let reference = sequential::connected_components(&graph);

    let ampc = connectivity(&graph, EPSILON, 33);
    assert_eq!(ampc.output, reference);

    let (sv, _) = ampc_suite::mpc::pointer_doubling_connectivity(&graph, 64);
    assert_eq!(sv, reference);

    let (lp, _) = ampc_suite::mpc::label_propagation_connectivity(&graph, EPSILON);
    assert_eq!(lp, reference);
}

#[test]
fn msf_weight_matches_kruskal_and_boruvka() {
    let base = generators::connected_gnm(2_000, 7_000, 5);
    let graph = generators::with_random_weights(&base, 6);
    let ampc = minimum_spanning_forest(&graph, EPSILON, 5);
    let (_, kruskal_weight) = sequential::kruskal_msf(&graph);
    let (_, boruvka_weight, _) = ampc_suite::mpc::boruvka_msf(&graph, 64);
    assert_eq!(ampc.output.total_weight, kruskal_weight);
    assert_eq!(boruvka_weight, kruskal_weight);
    assert_eq!(ampc.output.edges.len(), 1_999);
}

#[test]
fn mis_is_the_lfmis_of_its_priorities_and_luby_is_also_valid() {
    let graph = generators::erdos_renyi_gnm(1_500, 6_000, 9);
    let ampc = maximal_independent_set(&graph, EPSILON, 9);
    assert!(sequential::is_maximal_independent_set(&graph, &ampc.output));

    let (luby, luby_stats) = ampc_suite::mpc::luby_mis(&graph, 64, 9);
    assert!(sequential::is_maximal_independent_set(&graph, &luby));
    // Luby needs Θ(log n) rounds, the AMPC algorithm O(1/ε) iterations.
    assert!(luby_stats.num_rounds() >= 2);
}

#[test]
fn forest_connectivity_and_tree_operations_compose() {
    let forest = generators::random_forest(4_000, 16, 13);
    let reference = sequential::connected_components(&forest);

    assert_eq!(forest_connectivity(&forest, EPSILON, 13).output, reference);

    let rooted = root_forest(&forest, None, EPSILON, 13).output;
    // Parent pointers stay within components and point strictly "up" in
    // preorder.
    for v in 0..4_000u32 {
        let p = rooted.parent[v as usize];
        assert_eq!(reference[v as usize], reference[p as usize]);
        if p != v {
            assert!(rooted.preorder[p as usize] < rooted.preorder[v as usize]);
        }
    }
    // Subtree sizes of roots add up to n.
    let total: u64 = (0..4_000u32)
        .filter(|&v| rooted.parent[v as usize] == v)
        .map(|v| rooted.subtree_size[v as usize])
        .sum();
    assert_eq!(total, 4_000);
}

#[test]
fn two_edge_connectivity_matches_dfs_on_structured_and_random_graphs() {
    let structured = generators::bridged_blocks(8, 6, 4, 3);
    let bc = two_edge_connectivity(&structured, EPSILON, 3);
    assert_eq!(bc.output.bridges, sequential::bridges(&structured));
    assert_eq!(
        bc.output.two_edge_components,
        sequential::two_edge_connected_components(&structured)
    );

    let random = generators::erdos_renyi_gnm(800, 1_000, 17);
    let bc = two_edge_connectivity(&random, EPSILON, 17);
    assert_eq!(bc.output.bridges, sequential::bridges(&random));
}

#[test]
fn list_ranking_matches_wyllie_and_sequential() {
    let n = 6_000usize;
    let successor: Vec<u32> = {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(&mut rng);
        let mut succ = vec![0u32; n];
        for i in 0..n - 1 {
            succ[order[i] as usize] = order[i + 1];
        }
        succ[order[n - 1] as usize] = order[n - 1];
        succ
    };
    let expected = sequential::sequential_list_ranks(&successor);
    assert_eq!(list_ranking(&successor, EPSILON, 4).output, expected);
    let (wyllie, wyllie_stats) = ampc_suite::mpc::wyllie_list_ranking(&successor, 64);
    assert_eq!(wyllie, expected);
    assert!(wyllie_stats.num_rounds() >= 10); // Θ(log n)
}

#[test]
fn fault_injection_does_not_change_any_algorithm_output() {
    // The fault plan applies to the runtime the algorithm builds internally,
    // so here we exercise the runtime directly (as the examples do) and the
    // deterministic seeds guarantee algorithm-level reproducibility.
    let config = AmpcConfig::for_graph(10_000, 10_000, EPSILON).with_seed(7);
    let machines = config.num_machines();
    let run = |plan: FaultPlan| {
        let mut rt = AmpcRuntime::new(config.clone()).with_fault_plan(plan);
        rt.load_input((0..1_000u64).map(|x| {
            (
                ampc_suite::dds::Key::of(ampc_suite::dds::KeyTag::Successor, x),
                ampc_suite::dds::Value::scalar((x * 7 + 3) % 1_000),
            )
        }));
        rt.run_round(machines.min(32), |ctx| {
            let mut x = ctx.machine_id() as u64;
            for _ in 0..20 {
                x = ctx
                    .read(ampc_suite::dds::Key::of(
                        ampc_suite::dds::KeyTag::Successor,
                        x % 1_000,
                    ))
                    .map(|v| v.x)
                    .unwrap_or(x);
            }
            x
        })
        .unwrap()
    };
    let clean = run(FaultPlan::none());
    let faulty = run(FaultPlan::none().fail(0, 0).fail(0, 5).fail(0, 11));
    assert_eq!(clean, faulty);
}

#[test]
fn deterministic_given_the_same_seed() {
    let graph = generators::erdos_renyi_gnm(1_000, 3_000, 55);
    let a = maximal_independent_set(&graph, EPSILON, 55).output;
    let b = maximal_independent_set(&graph, EPSILON, 55).output;
    assert_eq!(a, b);

    let c = connectivity(&graph, EPSILON, 55).output;
    let d = connectivity(&graph, EPSILON, 55).output;
    assert_eq!(c, d);
}

#[test]
fn round_complexity_shapes_match_figure_one() {
    // Figure 1's qualitative claim: AMPC round counts are (near-)constant in
    // n while the MPC baselines grow with log n or D.
    let small = generators::two_cycle_instance(512, false, 2);
    let large = generators::two_cycle_instance(32_768, false, 2);

    let ampc_small = two_cycle(&small, EPSILON, 2).rounds();
    let ampc_large = two_cycle(&large, EPSILON, 2).rounds();
    let (_, mpc_small) = ampc_suite::mpc::two_cycle_mpc(&small, 64);
    let (_, mpc_large) = ampc_suite::mpc::two_cycle_mpc(&large, 64);

    // AMPC: grows by at most a couple of iterations over a 64x size increase.
    assert!(
        ampc_large <= ampc_small + 6,
        "ampc {ampc_small} -> {ampc_large}"
    );
    // MPC: strictly grows with log n.
    assert!(mpc_large.num_rounds() > mpc_small.num_rounds());
}
